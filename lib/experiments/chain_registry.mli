(** Named chains and a chain-spec mini-language for the CLI and tests.

    A spec is a comma-separated list of NF constructors, each optionally
    parameterised with [:arg]:

    {v
    mazunat          dynamic NAPT (external IP 203.0.113.1)
    maglev[:n]       Maglev LB with n backends (default 8)
    monitor          per-flow counters
    ipfilter[:port]  firewall denying the given dst port (default: none)
    statefulfw       SYN-gated stateful firewall
    gateway[:port]   app gateway fronting the port (default 80)
    snort            IDS with the stock rule set
    dosguard[:k[:b]] per-flow packet budget k (default 100); with [:b],
                     also a chain-wide budget of b packets total, summed
                     across shards through the state store
    vpn-in, vpn-out  AH encapsulator / decapsulator
    synthetic[:c]    synthetic NF with a c-cycle READ state function
    v}

    Example: ["mazunat,maglev:4,monitor,ipfilter"].  Duplicate NF kinds get
    numeric suffixes so chain names stay unique. *)

val registry : unit -> (string * string) list
(** [(name, description)] of the predefined chains. *)

val build : string -> ((unit -> Speedybox.Chain.t), string) result
(** [build s] resolves [s] as a predefined chain name first, then as a
    spec.  The returned thunk creates a fresh chain (fresh NF state, over
    a private solo state-store replica) on every call. *)

val build_sharded :
  store:Sb_state.Store.t -> string -> ((int -> Speedybox.Chain.t), string) result
(** Like {!build}, but the returned builder takes a shard index and
    constructs that shard's chain against [Store.replica store i]: the
    stateful NFs declare their cells on the shared store, so global-scope
    state (the monitor's totals, dosguard's chain-wide budget, maglev's
    backend health and assignment counts) spans the whole deployment.
    Pass the same [store] in the runtime config ([Runtime.config ~state])
    so the executors run its merge rounds. *)
