type digest = {
  packets : int;
  forwarded : int;
  dropped : int;
  slow_path : int;
  fast_path : int;
  events_fired : int;
  malformed : int;
}

type row = {
  label : string;
  input_packets : int;
  output_packets : int;
  digest : digest;
  mean_us : float;
  delta_mean_us : float;
  agree : bool;
}

(* A chain with consolidation, header rewriting, an armed per-flow budget
   event and per-flow counters: every runtime mechanism the impairments
   are supposed to stress.  The budget is low enough that the heavy-tailed
   elephants trip it even on the clean trace. *)
let chain_spec = "mazunat,dosguard:48,monitor"

let clean_trace () =
  Sb_trace.Workload.dcn_trace
    {
      Sb_trace.Workload.seed = 2024;
      n_flows = 120;
      mean_flow_packets = 10.;
      payload_len = (16, 512);
      udp_fraction = 0.1;
      malicious_fraction = 0.05;
      tokens = [ "attack" ];
    }

let impair_seed = 7

(* Every mutator at a mild and a harsh severity. *)
let scenarios =
  [
    "reorder:0.05";
    "reorder:0.3";
    "loss:0.02";
    "loss:0.2";
    "dup:0.02";
    "dup:0.2";
    "corrupt:0.02";
    "corrupt:0.2";
    "corrupt-fix:0.02";
    "corrupt-fix:0.2";
    "retrans:0.1";
    "retrans:0.5";
    "delay:0.05";
    "delay:0.3";
    "blackhole:0.02";
    "blackhole:0.1";
  ]

let build_chain () =
  match Chain_registry.build chain_spec with
  | Ok build -> build ()
  | Error msg -> failwith msg

let digest_of ~malformed (r : Speedybox.Runtime.run_result) =
  {
    packets = r.Speedybox.Runtime.packets;
    forwarded = r.Speedybox.Runtime.forwarded;
    dropped = r.Speedybox.Runtime.dropped;
    slow_path = r.Speedybox.Runtime.slow_path;
    fast_path = r.Speedybox.Runtime.fast_path;
    events_fired = r.Speedybox.Runtime.events_fired;
    malformed;
  }

let run_per_packet ~verify_checksums trace =
  let rt =
    Speedybox.Runtime.create (Speedybox.Runtime.config ~verify_checksums ()) (build_chain ())
  in
  let r = Speedybox.Runtime.run_trace rt trace in
  (digest_of ~malformed:(Speedybox.Runtime.rejected_malformed rt) r, r)

let run_burst ~verify_checksums trace =
  let rt =
    Speedybox.Runtime.create (Speedybox.Runtime.config ~verify_checksums ()) (build_chain ())
  in
  let r = Speedybox.Runtime.run_trace ~burst:32 rt trace in
  digest_of ~malformed:(Speedybox.Runtime.rejected_malformed rt) r

let run_sharded ~verify_checksums trace =
  let cfg = Speedybox.Runtime.config ~verify_checksums () in
  let sh = Sb_shard.Sharded.create ~shards:4 cfg (fun _ -> build_chain ()) in
  let r = Sb_shard.Sharded.run_trace ~burst:32 sh trace in
  let malformed =
    List.init 4 (Sb_shard.Sharded.runtime sh)
    |> List.fold_left (fun acc rt -> acc + Speedybox.Runtime.rejected_malformed rt) 0
  in
  digest_of ~malformed r

let measure ~label ~input_packets ~delta_vs trace =
  (* Corruption arms checksum verification everywhere, exactly as the CLI
     does, so damaged-but-parseable headers are rejected instead of
     consolidated into wrong rules. *)
  let verify_checksums =
    String.length label >= 7 && String.equal (String.sub label 0 7) "corrupt"
  in
  let digest, r = run_per_packet ~verify_checksums trace in
  let burst = run_burst ~verify_checksums trace in
  let sharded = run_sharded ~verify_checksums trace in
  (* The mean, not a percentile: impairment moves the tails and the mix
     (cheap classifier rejects, extra slow-path visits), which percentiles
     sitting on the fast path never see. *)
  let mean = Sb_sim.Stats.mean r.Speedybox.Runtime.latency_us in
  {
    label;
    input_packets;
    output_packets = List.length trace;
    digest;
    mean_us = mean;
    delta_mean_us = (match delta_vs with None -> 0. | Some base -> mean -. base);
    agree = digest = burst && digest = sharded;
  }

let matrix () =
  let clean = clean_trace () in
  let n = List.length clean in
  let base = measure ~label:"clean" ~input_packets:n ~delta_vs:None clean in
  base
  :: List.map
       (fun label ->
         let spec =
           match Sb_impair.Impair.parse_spec label with
           | Ok spec -> spec
           | Error msg -> failwith msg
         in
         let impaired, _summary = Sb_impair.Impair.apply ~seed:impair_seed spec clean in
         measure ~label ~input_packets:n ~delta_vs:(Some base.mean_us) impaired)
       scenarios

let check () = List.for_all (fun row -> row.agree) (matrix ())

let run () =
  Harness.print_header "Impairment matrix"
    "every mutator x 2 severities, per-packet vs burst-32 vs sharded-4";
  Harness.print_row
    "  scenario          in -> out     fwd   drop  slow  fast  events  malformed  \
     mean-us  d-mean   executors";
  let rows = matrix () in
  List.iter
    (fun row ->
      Harness.print_row
        (Printf.sprintf "  %-16s %5d -> %-5d %5d  %5d %5d %5d  %6d  %9d  %7.2f  %+6.2f   %s"
           row.label row.input_packets row.output_packets row.digest.forwarded
           row.digest.dropped row.digest.slow_path row.digest.fast_path
           row.digest.events_fired row.digest.malformed row.mean_us row.delta_mean_us
           (if row.agree then "ok" else "DIVERGE")))
    rows;
  Harness.print_note
    "digest = (fwd, drop, slow, fast, events, malformed); the three executors must\n\
    \  agree exactly on every impaired trace - 'DIVERGE' fails the run.";
  if not (List.for_all (fun row -> row.agree) rows) then begin
    prerr_endline "impair matrix: executor divergence detected";
    exit 1
  end
