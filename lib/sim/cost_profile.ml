type item = Serial of int | Parallel of int list

type stage = { label : string; items : item list }

type t = stage list

let stage label items = { label; items }

let serial_stage label cycles = { label; items = [ Serial cycles ] }

let item_cycles = function
  | Serial c -> c
  | Parallel [] -> 0
  | Parallel [ c ] -> c
  | Parallel costs ->
      let total, longest =
        List.fold_left (fun (t, m) c -> (t + c, if c > m then c else m)) (0, 0) costs
      in
      (* Imperfect overlap: a slice of the off-critical-path work still
         serialises (contention, skew). *)
      Cycles.parallel_sync + longest
      + ((total - longest) * Cycles.parallel_overlap_pct / 100)

let item_core_work = function
  | Serial c -> c
  | Parallel costs -> List.fold_left ( + ) 0 costs

let stage_cycles { items; _ } = List.fold_left (fun acc i -> acc + item_cycles i) 0 items

let stage_core_work { items; _ } =
  List.fold_left (fun acc i -> acc + item_core_work i) 0 items

let total_cycles t = List.fold_left (fun acc s -> acc + stage_cycles s) 0 t

let pp_item fmt = function
  | Serial c -> Format.fprintf fmt "%d" c
  | Parallel costs ->
      Format.fprintf fmt "par[%s]" (String.concat "," (List.map string_of_int costs))

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
    (fun fmt s ->
      Format.fprintf fmt "%s:%a" s.label
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_char fmt '+') pp_item)
        s.items)
    fmt t
