(* Calibration notes: one IPFilter traversal for an established flow on BESS
   should cost about 530 cycles (Table III of the paper); the SpeedyBox fast
   path should cost about 590-710 cycles regardless of chain length (Fig. 4:
   a one-NF chain is slightly slower with SpeedyBox, a three-NF chain 57.7%
   faster; Table III's early-drop chain saves 65%). *)

let frequency_ghz = 2.0

let to_microseconds cycles = float_of_int cycles /. (frequency_ghz *. 1000.)

let rate_mpps service_cycles =
  if service_cycles <= 0 then infinity else frequency_ghz *. 1000. /. float_of_int service_cycles

let parse = 110

let classify = 90

let nf_rx_tx = 70

let module_hop_bess = 50

let ring_hop_onvm = 100

let ha_forward = 40

let ha_drop = 40

let ha_modify_field = 90

let ha_encap = 260

let ha_decap = 220

let classifier = 150

let meta_detach = 80

let local_mat_record = 60

let global_consolidate_per_nf = 80

let fast_path_lookup = 200

let fast_path_per_action = 55

let event_check = 45

let event_fire = 420

let sf_invoke = 55

let fault_contain = 180

(* Fork/join is amortised over DPDK-style 32-packet batches, so the
   per-packet charge is small; the overlap percentage models imperfect
   concurrency between the helper cores (cache contention, skew). *)
let parallel_sync = 60

let parallel_overlap_pct = 15

let acl_rule_scan = 16

let acl_trie_walk = 64

let acl_established = 200

let nat_translate = 150

let nat_allocate = 380

let lb_consistent_hash = 130

let monitor_count = 280

let payload_scan_per_byte = 4

let snort_flow_setup = 900

let snort_preprocess = 550
