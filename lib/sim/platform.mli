(** The two execution environments of the paper's prototype (§VI-A).

    {b BESS} runs the whole service chain as a single run-to-completion
    process on one dedicated core: per-packet latency is the sum of all
    stage costs plus cheap intra-process module hops, and the sustainable
    rate is one packet per total service time.

    {b OpenNetVM} runs each NF on its own core and moves shared-memory
    packet descriptors over inter-core rings: latency additionally pays a
    ring hop per NF boundary, but the pipeline's rate is set by the slowest
    stage, so chaining more NFs does not reduce throughput.  The paper's
    14-core testbed capped OpenNetVM chains at 5 NFs; the same limit is
    enforced here. *)

type t = Bess | Onvm

val name : t -> string
(** ["BESS"] or ["ONVM"], the labels the paper's figures use. *)

val max_chain_length : t -> int option
(** [Some 5] for OpenNetVM, [None] for BESS. *)

val hop_cycles : t -> int

val latency_cycles : t -> Cost_profile.t -> int
(** End-to-end processing latency of one packet: stage cycles plus one hop
    per stage boundary. *)

val service_cycles : t -> Cost_profile.t -> int
(** Per-packet cycles at the throughput bottleneck: the whole profile on
    BESS; the slowest stage (plus its ring overhead) on OpenNetVM. *)

val latency_and_service : t -> Cost_profile.t -> int * int
(** Both numbers in one profile traversal on BESS (where they coincide) —
    what the per-packet hot path calls. *)

val pp : Format.formatter -> t -> unit
