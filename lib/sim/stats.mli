(** Sample accumulators for latency/throughput reporting: means, percentiles
    and CDFs, matching the quantities the paper's figures plot.

    Memory is bounded: count, mean, min and max are exact over every
    sample, while order statistics are computed over a uniform reservoir
    of at most 65536 samples (exact below that, an unbiased estimate
    beyond it) — so accumulators stay small even when a run streams
    millions of packets. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val absorb : t -> t -> unit
(** [absorb dst src] adds every sample of [src] to [dst] (leaving [src]
    untouched) — how per-shard accumulators merge into a run total. *)

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100], by linear interpolation between
    order statistics.  [nan] when empty. *)

val median : t -> float

val cdf : t -> points:int -> (float * float) list
(** [cdf t ~points] samples the empirical CDF at [points] evenly spaced
    cumulative probabilities; each pair is [(value, probability)]. *)

val values : t -> float array
(** A sorted copy of the retained samples (all of them below the
    reservoir cap). *)

(** A one-line summary record for table printing. *)
type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  min : float;
  max : float;
}

val summarize : t -> summary

val pp_stat : Format.formatter -> float -> unit
(** ["%.2f"], except [nan] (the empty-accumulator value) prints as ["-"]. *)

val pp_summary : Format.formatter -> summary -> unit
(** Empty summaries ([n = 0]) print ["-"] for every statistic, never
    ["nan"]. *)
