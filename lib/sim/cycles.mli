(** The cycle-accounting cost model.

    This module substitutes for the paper's testbed (Intel Xeon E5-2660 v4,
    2.00 GHz, DPDK): every primitive operation a platform or NF performs is
    charged a cycle cost, and virtual-clock cycles convert to microseconds at
    the testbed frequency.  Constants are calibrated so the {e original}
    chain lands in the ballpark of the paper's measurements (Table III puts
    one IPFilter traversal at 510-582 cycles per packet) — the claims the
    benchmarks reproduce are relative, not absolute.

    All costs are per packet unless stated otherwise. *)

val frequency_ghz : float
(** 2.0, the paper's CPU frequency. *)

val to_microseconds : int -> float
(** [to_microseconds cycles] at {!frequency_ghz}. *)

val rate_mpps : int -> float
(** [rate_mpps service_cycles] is the packet rate a core sustains when each
    packet costs [service_cycles]: [frequency / cycles], in Mpps. *)

(** {1 Platform primitives} *)

val parse : int
(** Parse Ethernet + IPv4 + L4 headers (the per-NF redundancy R1). *)

val classify : int
(** Flow-table lookup inside an NF. *)

val nf_rx_tx : int
(** Per-NF packet descriptor receive/transmit bookkeeping. *)

val module_hop_bess : int
(** Moving a packet between modules of the BESS dataflow graph (function
    call + metadata, same core). *)

val ring_hop_onvm : int
(** Moving a descriptor across an OpenNetVM inter-core ring (cache-line
    transfer + ring protocol). *)

(** {1 Header actions} *)

val ha_forward : int
val ha_drop : int
val ha_modify_field : int
(** Per modified field, including the incremental checksum update. *)

val ha_encap : int
val ha_decap : int

(** {1 SpeedyBox machinery} *)

val classifier : int
(** Packet Classifier: hash the 5-tuple, attach FID metadata. *)

val meta_detach : int
(** Removing the FID metadata when the packet leaves the chain. *)

val local_mat_record : int
(** Per-NF Local MAT recording on the initial packet's traversal. *)

val global_consolidate_per_nf : int
(** One-time consolidation work per Local MAT merged into the Global MAT. *)

val fast_path_lookup : int
(** Global MAT rule lookup for a subsequent packet. *)

val fast_path_per_action : int
(** Per consolidated source action: the Global MAT executor walks the
    per-NF entries that fed the rule, so the fast path grows mildly with
    chain length (visible in the paper's Fig. 4 slope). *)

val event_check : int
(** Per registered event condition evaluated on the fast path. *)

val event_fire : int
(** Rewriting a consolidated rule when an event triggers. *)

val sf_invoke : int
(** Dispatching one recorded state-function handler. *)

val fault_contain : int
(** Catching an NF fault and releasing the packet's descriptor: the
    exception unwind plus the fault-counter and quarantine bookkeeping. *)

val parallel_sync : int
(** Per-packet fork/join overhead when state-function batches run on extra
    cores (amortised over DPDK-style packet batches). *)

val parallel_overlap_pct : int
(** Percentage of the non-critical-path work that still serialises when
    batches run "in parallel" (cache contention, core skew); keeps the
    measured speedup at the paper's ~2.1x rather than the ideal N. *)

(** {1 NF-specific work} *)

val acl_rule_scan : int
(** Linear ACL scan, per rule inspected (IPFilter initial packets). *)

val acl_trie_walk : int
(** Fixed cost of a source-prefix trie descent (the alternative ACL
    engine; ablation A7). *)

val acl_established : int
(** IPFilter verdict for a flow already in its flow cache. *)

val nat_translate : int
(** MazuNAT mapping lookup + header rewrite bookkeeping. *)

val nat_allocate : int
(** MazuNAT port allocation for a new flow. *)

val lb_consistent_hash : int
(** Maglev lookup-table probe. *)

val monitor_count : int
(** Monitor counter increment. *)

val payload_scan_per_byte : int
(** Aho-Corasick payload inspection, per payload byte (Snort). *)

val snort_flow_setup : int
(** Snort per-flow rule-group assignment on the initial packet. *)

val snort_preprocess : int
(** Snort's per-packet front end (decode, stream bookkeeping, dispatch)
    that runs before the flow's rule-match function.  On the SpeedyBox
    fast path only the recorded rule-match handler runs, so this is
    exactly the per-NF redundancy consolidation removes. *)
