(* Count, mean, min and max are exact over every sample ever added.  Order
   statistics (percentiles, CDFs) read a uniform reservoir (Vitter's
   algorithm R) of at most [reservoir_cap] samples, so an accumulator's
   memory is bounded no matter how many packets a run streams — a
   million-flow load sweep must not retain a float per packet.  Below the
   cap nothing is discarded and every statistic is exact, which covers the
   differential tests that compare accumulators sample-for-sample. *)
let reservoir_cap = 1 lsl 16

type t = {
  mutable data : float array;
  mutable len : int;  (* filled reservoir slots, <= reservoir_cap *)
  mutable seen : int;  (* samples offered over the accumulator's life *)
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  mutable sorted : bool;
  mutable rng : int;  (* xorshift state for replacement draws *)
}

let create () =
  {
    data = Array.make 64 0.;
    len = 0;
    seen = 0;
    sum = 0.;
    lo = infinity;
    hi = neg_infinity;
    sorted = true;
    rng = 0x9e3779b9;
  }

(* Deterministic xorshift: reservoir contents depend only on the sample
   sequence, never on global randomness. *)
let draw t bound =
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  t.rng <- x land max_int;
  t.rng mod bound

let store t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (min reservoir_cap (2 * t.len)) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let add t x =
  t.seen <- t.seen + 1;
  t.sum <- t.sum +. x;
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  if t.len < reservoir_cap then store t x
  else begin
    let j = draw t t.seen in
    if j < reservoir_cap then begin
      t.data.(j) <- x;
      t.sorted <- false
    end
  end

let add_int t x = add t (float_of_int x)

let count t = t.seen

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let mean t = if t.seen = 0 then nan else t.sum /. float_of_int t.seen

let min_value t = if t.seen = 0 then nan else t.lo

let max_value t = if t.seen = 0 then nan else t.hi

let percentile t p =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      ((1. -. frac) *. t.data.(lo)) +. (frac *. t.data.(hi))
    end
  end

let median t = percentile t 50.

(* Bulk merge, for combining per-shard accumulators.  The exact aggregates
   merge exactly; the reservoirs concatenate while they fit (the common
   case — shard runs stay far below the cap, so the merge stays
   sample-for-sample exact).  Overflowing samples displace random slots,
   which keeps the reservoir a fair-enough mixture without re-weighting. *)
let absorb dst src =
  dst.seen <- dst.seen + src.seen;
  dst.sum <- dst.sum +. src.sum;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi;
  if src.len > 0 then begin
    let fits = min src.len (reservoir_cap - dst.len) in
    if fits > 0 then begin
      let need = dst.len + fits in
      if need > Array.length dst.data then begin
        let rec cap n = if n >= need then n else cap (2 * n) in
        let bigger = Array.make (min reservoir_cap (cap (Array.length dst.data))) 0. in
        Array.blit dst.data 0 bigger 0 dst.len;
        dst.data <- bigger
      end;
      Array.blit src.data 0 dst.data dst.len fits;
      dst.len <- need
    end;
    for i = fits to src.len - 1 do
      dst.data.(draw dst reservoir_cap) <- src.data.(i)
    done;
    dst.sorted <- false
  end

let cdf t ~points =
  if t.len = 0 || points < 1 then []
  else begin
    ensure_sorted t;
    List.init points (fun i ->
        let prob = float_of_int (i + 1) /. float_of_int points in
        let idx = min (t.len - 1) (int_of_float (Float.ceil (prob *. float_of_int t.len)) - 1) in
        (t.data.(max 0 idx), prob))
  end

let values t =
  ensure_sorted t;
  Array.sub t.data 0 t.len

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  min : float;
  max : float;
}

let summarize t =
  {
    n = t.seen;
    mean = mean t;
    p50 = percentile t 50.;
    p90 = percentile t 90.;
    p99 = percentile t 99.;
    min = min_value t;
    max = max_value t;
  }

(* An empty accumulator summarizes to nan everywhere; print those fields as
   "-" rather than leaking "nan" into reports. *)
let pp_stat fmt v =
  if Float.is_nan v then Format.pp_print_string fmt "-" else Format.fprintf fmt "%.2f" v

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%a p50=%a p90=%a p99=%a min=%a max=%a" s.n pp_stat s.mean
    pp_stat s.p50 pp_stat s.p90 pp_stat s.p99 pp_stat s.min pp_stat s.max
