type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let add_int t x = add t (float_of_int x)

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then nan
  else begin
    let sum = ref 0. in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.len
  end

let min_value t =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    t.data.(0)
  end

let max_value t =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    t.data.(t.len - 1)
  end

let percentile t p =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      ((1. -. frac) *. t.data.(lo)) +. (frac *. t.data.(hi))
    end
  end

let median t = percentile t 50.

(* Bulk sample merge, for combining per-shard accumulators: the dst grows
   at most once and the samples land unsorted (sorting is deferred to the
   next order-statistic query, as with [add]). *)
let absorb dst src =
  if src.len > 0 then begin
    let need = dst.len + src.len in
    if need > Array.length dst.data then begin
      let rec cap n = if n >= need then n else cap (2 * n) in
      let bigger = Array.make (cap (Array.length dst.data)) 0. in
      Array.blit dst.data 0 bigger 0 dst.len;
      dst.data <- bigger
    end;
    Array.blit src.data 0 dst.data dst.len src.len;
    dst.len <- need;
    dst.sorted <- false
  end

let cdf t ~points =
  if t.len = 0 || points < 1 then []
  else begin
    ensure_sorted t;
    List.init points (fun i ->
        let prob = float_of_int (i + 1) /. float_of_int points in
        let idx = min (t.len - 1) (int_of_float (Float.ceil (prob *. float_of_int t.len)) - 1) in
        (t.data.(max 0 idx), prob))
  end

let values t =
  ensure_sorted t;
  Array.sub t.data 0 t.len

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  min : float;
  max : float;
}

let summarize t =
  {
    n = t.len;
    mean = mean t;
    p50 = percentile t 50.;
    p90 = percentile t 90.;
    p99 = percentile t 99.;
    min = min_value t;
    max = max_value t;
  }

(* An empty accumulator summarizes to nan everywhere; print those fields as
   "-" rather than leaking "nan" into reports. *)
let pp_stat fmt v =
  if Float.is_nan v then Format.pp_print_string fmt "-" else Format.fprintf fmt "%.2f" v

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%a p50=%a p90=%a p99=%a min=%a max=%a" s.n pp_stat s.mean
    pp_stat s.p50 pp_stat s.p90 pp_stat s.p99 pp_stat s.min pp_stat s.max
