type t = Bess | Onvm

let name = function Bess -> "BESS" | Onvm -> "ONVM"

let max_chain_length = function Bess -> None | Onvm -> Some 5

let hop_cycles = function Bess -> Cycles.module_hop_bess | Onvm -> Cycles.ring_hop_onvm

let latency_cycles t profile =
  let stages = List.length profile in
  let hops = max 0 (stages - 1) in
  Cost_profile.total_cycles profile + (hops * hop_cycles t)

let onvm_stage_bottleneck (stage : Cost_profile.stage) =
  (* Parallel batches are dispatched to other cores and pipeline with the
     manager's own work, so each is its own bottleneck candidate rather
     than blocking the stage (unlike BESS's run-to-completion join). *)
  List.fold_left
    (fun acc item ->
      match item with
      | Cost_profile.Serial _ -> acc
      | Cost_profile.Parallel costs ->
          List.fold_left (fun acc c -> max acc (c + Cycles.ring_hop_onvm)) acc costs)
    (let serial =
       List.fold_left
         (fun acc item ->
           match item with
           | Cost_profile.Serial c -> acc + c
           | Cost_profile.Parallel _ -> acc + Cycles.parallel_sync)
         0 stage.Cost_profile.items
     in
     serial + Cycles.ring_hop_onvm)
    stage.Cost_profile.items

let service_cycles t profile =
  match t with
  | Bess -> latency_cycles t profile
  | Onvm -> List.fold_left (fun acc stage -> max acc (onvm_stage_bottleneck stage)) 0 profile

let latency_and_service t profile =
  let latency = latency_cycles t profile in
  match t with Bess -> (latency, latency) | Onvm -> (latency, service_cycles t profile)

let pp fmt t = Format.pp_print_string fmt (name t)
