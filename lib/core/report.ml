let pct part whole = if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let stat v = Format.asprintf "%a" Sb_sim.Stats.pp_stat v

(* The result-only lines shared by the unsharded and sharded summaries:
   verdicts, paths, latency, model throughput and flow processing times —
   with the sentinel bucket (packets that have no 5-tuple) reported by
   name, so the raw sentinel FID never leaks into output. *)
let core_lines buf label (result : Runtime.run_result) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let summary = Sb_sim.Stats.summarize result.Runtime.latency_us in
  line "%s: %d packets (%d forwarded, %d dropped)" label result.Runtime.packets
    result.Runtime.forwarded result.Runtime.dropped;
  line "  paths      : slow %d (%.1f%%), fast %d (%.1f%%)" result.Runtime.slow_path
    (pct result.Runtime.slow_path result.Runtime.packets)
    result.Runtime.fast_path
    (pct result.Runtime.fast_path result.Runtime.packets);
  (* A zero-packet run has no samples: print "-" rather than "nan". *)
  line "  latency    : mean %sus p50 %sus p90 %sus p99 %sus max %sus"
    (stat summary.Sb_sim.Stats.mean) (stat summary.Sb_sim.Stats.p50)
    (stat summary.Sb_sim.Stats.p90) (stat summary.Sb_sim.Stats.p99)
    (stat summary.Sb_sim.Stats.max);
  (let mpps = Runtime.rate_mpps result in
   if Float.is_nan mpps then line "  throughput : - (no packets)"
   else line "  throughput : %.3f Mpps (model)" mpps)

let flow_time_lines buf (result : Runtime.run_result) =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let flow_stats = Sb_sim.Stats.create () in
  let non_flow = ref None in
  Sb_flow.Flow_table.iter
    (fun fid us ->
      if fid = Runtime.no_flow_fid then non_flow := Some us
      else Sb_sim.Stats.add flow_stats us)
    result.Runtime.flow_time_us;
  if Sb_sim.Stats.count flow_stats > 0 then
    line "  flow time  : %d flows, mean %sus p50 %sus p99 %sus"
      (Sb_sim.Stats.count flow_stats)
      (stat (Sb_sim.Stats.mean flow_stats))
      (stat (Sb_sim.Stats.percentile flow_stats 50.))
      (stat (Sb_sim.Stats.percentile flow_stats 99.));
  match !non_flow with
  | Some us -> line "  non-flow   : %.2fus (packets with no 5-tuple)" us
  | None -> ()

(* The state-store section, shared verbatim by the unsharded and sharded
   summaries so the two reports diff clean: declared-cell counts per scope
   and every global cell's merged value (sorted by name).  Executor-
   dependent figures like merge rounds stay out of here. *)
let state_lines buf store =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if Sb_state.Store.cell_count store > 0 then begin
    let c = Sb_state.Store.cell_counts store in
    line "  state cells: %d per-flow, %d per-shard, %d global"
      c.Sb_state.Store.per_flow c.Sb_state.Store.per_shard c.Sb_state.Store.global;
    match Sb_state.Store.merged_values store with
    | [] -> ()
    | values ->
        line "  global state:";
        List.iter
          (fun (name, kind, v) ->
            line "    %-28s %-10s %d" name (Sb_state.Kind.to_string kind) v)
          values
  end

let run_summary ?(label = "run") rt (result : Runtime.run_result) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  core_lines buf label result;
  let mat = Runtime.global_mat rt in
  let mem = Sb_mat.Global_mat.memory_stats mat in
  line "  global mat : %d rules, %d distinct actions, %d batches"
    mem.Sb_mat.Global_mat.rules mem.Sb_mat.Global_mat.distinct_actions
    mem.Sb_mat.Global_mat.batches;
  flow_time_lines buf result;
  if result.Runtime.events_fired > 0 then
    line "  events     : %d fired" result.Runtime.events_fired;
  if Sb_mat.Global_mat.evictions mat > 0 then
    line "  evictions  : %d (LRU rule cap)" (Sb_mat.Global_mat.evictions mat);
  if Runtime.expired_flows rt > 0 then
    line "  expiry     : %d idle flows" (Runtime.expired_flows rt);
  if Runtime.rejected_malformed rt > 0 then
    line "  malformed  : %d packets rejected at the classifier"
      (Runtime.rejected_malformed rt);
  List.iter (fun s -> line "  %s" s) (Sb_fault.Supervisor.summary (Runtime.supervisor rt));
  let cond_faults = Sb_mat.Event_table.condition_faults (Chain.events (Runtime.chain rt)) in
  if cond_faults > 0 then line "  events     : %d raising conditions disarmed" cond_faults;
  state_lines buf (Runtime.state rt);
  Buffer.contents buf

let sharded_run_summary ?(label = "run") rts (result : Runtime.run_result) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  core_lines buf label result;
  (* Table occupancy summed across shards; distinct actions are per-shard
     distinct, so the sum is an upper bound when shards share actions. *)
  let rules, actions, batches, evictions =
    List.fold_left
      (fun (r, a, b, e) rt ->
        let mat = Runtime.global_mat rt in
        let mem = Sb_mat.Global_mat.memory_stats mat in
        ( r + mem.Sb_mat.Global_mat.rules,
          a + mem.Sb_mat.Global_mat.distinct_actions,
          b + mem.Sb_mat.Global_mat.batches,
          e + Sb_mat.Global_mat.evictions mat ))
      (0, 0, 0, 0) rts
  in
  line "  global mat : %d rules, %d distinct actions, %d batches (summed over %d shards)"
    rules actions batches (List.length rts);
  (* Parallel execution is only as good as the cores backing the shards;
     print what this machine offers so a disappointing speedup is
     explainable from the report alone. *)
  line "  cores      : %d available for Domain-parallel execution"
    (Domain.recommended_domain_count ());
  flow_time_lines buf result;
  if result.Runtime.events_fired > 0 then
    line "  events     : %d fired" result.Runtime.events_fired;
  if evictions > 0 then line "  evictions  : %d (LRU rule cap)" evictions;
  (let expired = List.fold_left (fun acc rt -> acc + Runtime.expired_flows rt) 0 rts in
   if expired > 0 then line "  expiry     : %d idle flows" expired);
  (let rejected = List.fold_left (fun acc rt -> acc + Runtime.rejected_malformed rt) 0 rts in
   if rejected > 0 then line "  malformed  : %d packets rejected at the classifier" rejected);
  List.iteri
    (fun i rt ->
      let sup = Runtime.supervisor rt in
      if Sb_fault.Supervisor.active sup then
        List.iter (fun s -> line "  shard %d: %s" i s) (Sb_fault.Supervisor.summary sup))
    rts;
  (* Every shard runtime carries the same (shared) store: report it once,
     identically to the unsharded summary; the merge-round count is the
     one executor-specific line and stays outside the diffable section. *)
  (match rts with
  | rt :: _ ->
      state_lines buf (Runtime.state rt);
      let rounds = Sb_state.Store.merge_rounds (Runtime.state rt) in
      if rounds > 0 then line "  state merge: %d rounds" rounds
  | [] -> ());
  Buffer.contents buf

let chain_state chain =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "chain %s:\n" (Chain.name chain));
  List.iter
    (fun nf ->
      Buffer.add_string buf (Printf.sprintf "  [%s]\n" nf.Nf.name);
      let digest = nf.Nf.state_digest () in
      if digest <> "" then
        String.split_on_char '\n' digest
        |> List.iter (fun line -> Buffer.add_string buf (Printf.sprintf "    %s\n" line)))
    (Chain.nfs chain);
  Buffer.contents buf

let stage_breakdown (result : Runtime.run_result) =
  let rows =
    Hashtbl.fold
      (fun label stats acc ->
        let total = Sb_sim.Stats.mean stats *. float_of_int (Sb_sim.Stats.count stats) in
        (label, Sb_sim.Stats.count stats, Sb_sim.Stats.mean stats, total) :: acc)
      result.Runtime.stage_cycles []
    (* Descending by total cycles; label breaks ties so the table is
       deterministic regardless of hashtable iteration order. *)
    |> List.sort (fun (la, _, _, a) (lb, _, _, b) ->
           let c = Float.compare b a in
           if c <> 0 then c else String.compare la lb)
  in
  let grand_total = List.fold_left (fun acc (_, _, _, t) -> acc +. t) 0. rows in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "stage breakdown (cycles):\n";
  List.iter
    (fun (label, n, mean, total) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %7d pkts  mean %6.0f  share %5.1f%%\n" label n mean
           (100. *. total /. Float.max 1. grand_total)))
    rows;
  Buffer.contents buf

type shard_row = {
  shard : int;
  packets : int;
  flows : int;
  rules : int;
  control_msgs : int;
  migrated_in : int;
  migrated_out : int;
  state_entries : int;
      (* live per-flow state-store entries held by this shard's replica *)
}

(* Report depends only on this row type, not on the shard library (which
   sits above the core): the sharded runtime renders its stats through
   here so the CLI prints one consistent table. *)
let shard_summary rows =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "shards: %d" (List.length rows);
  List.iter
    (fun r ->
      let migr =
        if r.migrated_in = 0 && r.migrated_out = 0 then ""
        else Printf.sprintf "  migr +%d/-%d" r.migrated_in r.migrated_out
      in
      let ctrl =
        if r.control_msgs = 0 then "" else Printf.sprintf "  ctrl %d" r.control_msgs
      in
      let st =
        if r.state_entries = 0 then "" else Printf.sprintf "  state %d" r.state_entries
      in
      line "  shard %-3d: %7d pkts  %5d flows  %5d rules%s%s%s" r.shard r.packets r.flows
        r.rules ctrl migr st)
    rows;
  (let total = List.fold_left (fun acc r -> acc + r.packets) 0 rows in
   let peak = List.fold_left (fun acc r -> max acc r.packets) 0 rows in
   let n = List.length rows in
   if n > 1 && total > 0 then
     (* Peak-to-mean packet ratio: 1.00 is a perfectly even spread. *)
     line "  balance  : peak/mean %.2f"
       (float_of_int (peak * n) /. float_of_int total));
  Buffer.contents buf

let flow_rules rt ~limit =
  let buf = Buffer.create 256 in
  let mat = Runtime.global_mat rt in
  let total = Sb_mat.Global_mat.flow_count mat in
  let rules =
    Sb_mat.Global_mat.fold (fun fid rule acc -> (fid, rule) :: acc) mat []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iteri
    (fun i (fid, rule) ->
      if i < limit then
        Buffer.add_string buf
          (Format.asprintf "  %a: %a@." Sb_flow.Fid.pp fid Sb_mat.Global_mat.pp_rule rule))
    rules;
  if total > limit then
    Buffer.add_string buf (Printf.sprintf "  ... and %d more\n" (total - limit));
  Buffer.contents buf
