type nf_context = {
  fid : Sb_flow.Fid.t;
  local_mat : Sb_mat.Local_mat.t;
  events : Sb_mat.Event_table.t;
  recording : bool;
}

let nf_extract_fid (p : Sb_packet.Packet.t) =
  if p.Sb_packet.Packet.fid < 0 then invalid_arg "Api.nf_extract_fid: packet has no FID";
  p.Sb_packet.Packet.fid

let localmat_add_ha ctx action =
  if ctx.recording then Sb_mat.Local_mat.add_header_action ctx.local_mat ctx.fid action

let localmat_add_sf ctx sf =
  if ctx.recording then Sb_mat.Local_mat.add_state_function ctx.local_mat ctx.fid sf

let register_event ctx ?one_shot ?global_state ~condition ?new_actions
    ?new_state_functions ?update_fn () =
  if ctx.recording then
    Sb_mat.Event_table.register ctx.events ~fid:ctx.fid
      ~nf:(Sb_mat.Local_mat.nf_name ctx.local_mat)
      ?one_shot ?global_state ~condition ?new_actions ?new_state_functions ?update_fn ()
