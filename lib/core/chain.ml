type t = {
  name : string;
  nfs : Nf.t list;
  local_mats : Sb_mat.Local_mat.t list;
  events : Sb_mat.Event_table.t;
}

let create ~name nfs =
  if nfs = [] then invalid_arg "Chain.create: empty chain";
  let names = List.map (fun nf -> nf.Nf.name) nfs in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Chain.create: duplicate NF names";
  {
    name;
    nfs;
    local_mats = List.map (fun nf -> Sb_mat.Local_mat.create ~nf:nf.Nf.name) nfs;
    events = Sb_mat.Event_table.create ();
  }

let name t = t.name

let nfs t = t.nfs

let length t = List.length t.nfs

let local_mats t = t.local_mats

let local_mat_for t nf =
  match
    List.find_opt
      (fun mat -> String.equal (Sb_mat.Local_mat.nf_name mat) nf.Nf.name)
      t.local_mats
  with
  | Some mat -> mat
  | None -> invalid_arg (Printf.sprintf "Chain.local_mat_for: NF %s not in chain" nf.Nf.name)

let events t = t.events

let consolidable t = List.for_all (fun nf -> nf.Nf.consolidable) t.nfs

let state_digest t =
  String.concat "\n"
    (List.map (fun nf -> Printf.sprintf "%s: %s" nf.Nf.name (nf.Nf.state_digest ())) t.nfs)

(* [tuple] extends the teardown into the NFs' own per-flow state; only the
   idle-expiry path passes it — FIN cleanup and rule eviction leave NF
   state alone (counters outliving their connection is what the original
   NF code does, and the equivalence checker compares against that). *)
let remove_flow ?tuple t fid =
  List.iter (fun mat -> Sb_mat.Local_mat.remove_flow mat fid) t.local_mats;
  Sb_mat.Event_table.remove_flow t.events fid;
  match tuple with
  | Some tu -> List.iter (fun nf -> nf.Nf.remove_flow tu) t.nfs
  | None -> ()
