type classification = {
  mutable fid : Sb_flow.Fid.t;
  mutable tuple : Sb_flow.Five_tuple.t;
  mutable thash : int;
  mutable established : bool;
  mutable final : bool;
  mutable malformed : bool;
  mutable cycles : int;
}

type t = {
  conntrack : Sb_flow.Conntrack.t;
  fid_bits : int;
  verify_checksums : bool;
  mutable rejected : int;
}

let create ?(fid_bits = Sb_flow.Fid.default_bits) ?(verify_checksums = false) () =
  { conntrack = Sb_flow.Conntrack.create (); fid_bits; verify_checksums; rejected = 0 }

let fid_bits t = t.fid_bits

let rejected t = t.rejected

let scratch () =
  {
    fid = 0;
    tuple = Sb_flow.Five_tuple.dummy;
    thash = 0;
    established = false;
    final = false;
    malformed = false;
    cycles = 0;
  }

let reject t cls =
  t.rejected <- t.rejected + 1;
  cls.fid <- -1;
  cls.tuple <- Sb_flow.Five_tuple.dummy;
  cls.thash <- 0;
  cls.established <- false;
  cls.final <- false;
  cls.malformed <- true;
  cls.cycles <- Sb_sim.Cycles.classifier

(* The burst path classifies into caller-owned scratch records, so a whole
   burst costs no classification allocations (the tuple itself is still
   built fresh: it outlives the packet as a conntrack / liveness key).

   Classification is split into two phases so the burst prescan can
   pipeline lookups DPDK-style.  [prepare_into] is a pure function of the
   packet bytes: admission checks, tuple extraction, one FNV hash shared
   by the FID fold and every conntrack operation, and a prefetch hint for
   the conntrack slot the second phase will probe.  [observe_into]
   advances the flow's connection state.  Running phase one over a whole
   burst before any phase two means every conntrack probe lands on a line
   whose fill started a burst ago.

   A packet that does not parse to a 5-tuple — or, with
   [verify_checksums], whose checksums are stale — is marked [malformed]
   in phase one and never touches conntrack: corrupted headers are
   rejected before any NF state can absorb them. *)
let prepare_into t packet cls =
  (* A bare proto-byte read, not [Five_tuple.of_packet_opt]: the hot path
     pays two integer compares instead of an option allocation. *)
  let proto =
    Sb_packet.Ipv4.get_proto packet.Sb_packet.Packet.buf
      (Sb_packet.Packet.l3_offset packet)
  in
  if proto <> 6 && proto <> 17 then reject t cls
  else if t.verify_checksums && not (Sb_packet.Packet.checksums_ok packet) then reject t cls
  else begin
    let tuple = Sb_flow.Five_tuple.of_packet packet in
    let h = Sb_flow.Five_tuple.hash tuple in
    let fid = Sb_flow.Fid.of_hash ~bits:t.fid_bits h in
    packet.Sb_packet.Packet.fid <- fid;
    cls.fid <- fid;
    cls.tuple <- tuple;
    cls.thash <- h;
    cls.established <- false;
    cls.final <- false;
    cls.malformed <- false;
    cls.cycles <- Sb_sim.Cycles.classifier;
    Sb_flow.Conntrack.prefetch t.conntrack h
  end

let observe_into t packet cls =
  let verdict = Sb_flow.Conntrack.observe_h t.conntrack ~hash:cls.thash cls.tuple packet in
  cls.established <- verdict.Sb_flow.Conntrack.state = Sb_flow.Conntrack.Established;
  cls.final <- verdict.Sb_flow.Conntrack.final

let classify_into t packet cls =
  prepare_into t packet cls;
  if not cls.malformed then observe_into t packet cls

let classify t packet =
  let cls = scratch () in
  classify_into t packet cls;
  cls

let export_flow t tuple = Sb_flow.Conntrack.state t.conntrack tuple

let adopt_flow t tuple st = Sb_flow.Conntrack.adopt t.conntrack tuple st

let forget t tuple = Sb_flow.Conntrack.forget t.conntrack tuple

let active_flows t = Sb_flow.Conntrack.active_flows t.conntrack
