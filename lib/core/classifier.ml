type classification = {
  mutable fid : Sb_flow.Fid.t;
  mutable tuple : Sb_flow.Five_tuple.t;
  mutable established : bool;
  mutable final : bool;
  mutable cycles : int;
}

type t = { conntrack : Sb_flow.Conntrack.t; fid_bits : int }

let create ?(fid_bits = Sb_flow.Fid.default_bits) () =
  { conntrack = Sb_flow.Conntrack.create (); fid_bits }

let fid_bits t = t.fid_bits

let scratch () =
  { fid = 0; tuple = Sb_flow.Five_tuple.dummy; established = false; final = false; cycles = 0 }

(* The burst path classifies into caller-owned scratch records, so a whole
   burst costs no classification allocations (the tuple itself is still
   built fresh: it outlives the packet as a conntrack / liveness key). *)
let classify_into t packet cls =
  let tuple = Sb_flow.Five_tuple.of_packet packet in
  let fid = Sb_flow.Fid.of_tuple ~bits:t.fid_bits tuple in
  packet.Sb_packet.Packet.fid <- fid;
  let verdict = Sb_flow.Conntrack.observe t.conntrack tuple packet in
  cls.fid <- fid;
  cls.tuple <- tuple;
  cls.established <- verdict.Sb_flow.Conntrack.state = Sb_flow.Conntrack.Established;
  cls.final <- verdict.Sb_flow.Conntrack.final;
  cls.cycles <- Sb_sim.Cycles.classifier

let classify t packet =
  let cls = scratch () in
  classify_into t packet cls;
  cls

let export_flow t tuple = Sb_flow.Conntrack.state t.conntrack tuple

let adopt_flow t tuple st = Sb_flow.Conntrack.adopt t.conntrack tuple st

let forget t tuple = Sb_flow.Conntrack.forget t.conntrack tuple

let active_flows t = Sb_flow.Conntrack.active_flows t.conntrack
