(** The SpeedyBox runtime: drives packets through a service chain either the
    original way (every packet traverses every NF) or the SpeedyBox way
    (initial packets traverse and record; subsequent packets take the
    consolidated Global MAT fast path), producing per-packet cost profiles
    under the configured execution platform. *)

type mode = Original | Speedybox

val pp_mode : Format.formatter -> mode -> unit

type config = {
  platform : Sb_sim.Platform.t;
  mode : mode;
  policy : Sb_mat.Parallel.policy;  (** state-function parallelism policy *)
  fid_bits : int;
  idle_timeout_cycles : int option;
      (** Extension beyond the paper (which cleans rules up only on TCP
          FIN/RST, §VI-B): evict a flow's consolidated rule after this
          much arrival-clock idleness, bounding the state leak from UDP
          and abandoned flows.  Requires packets stamped with
          [ingress_cycle] (see {!Sb_trace.Workload} timing helpers);
          untimed packets never expire anything.  [None] (default)
          disables expiry. *)
  max_rules : int option;
      (** Cap on the Global MAT rule table (LRU eviction beyond it, like a
          megaflow cache); an evicted flow's next packet re-records.
          [None] (default) leaves the table unbounded. *)
  fastpath : Sb_mat.Global_mat.exec_mode;
      (** How the Global MAT executes consolidated rules: [Compiled] (the
          default flat-program fast path) or [Interpreted] (the reference
          step-list walker the differential tests compare against). *)
  fault_policy : Sb_fault.Health.policy;
      (** Health thresholds and per-NF failure handling (see
          {!Sb_fault.Health}).  Only consulted once a fault occurs or an
          injector is armed; a fault-free run never touches it. *)
  injector : Sb_fault.Injector.t option;
      (** Deterministic fault injector consulted once per (NF, packet) on
          both paths.  [None] (default) disables injection and its
          per-packet bookkeeping entirely. *)
  obs : Sb_obs.Sink.t;
      (** Observability sink ({!Sb_obs.Sink.null} by default — disarmed).
          When armed, the runtime feeds whichever pillars the sink carries:
          per-path packet counters and latency histograms plus end-of-run
          occupancy gauges into the metrics registry, one span per visited
          stage into the tracer, and flow-lifecycle events (first-packet,
          consolidated, event-rewrite, quarantined, degraded-NF bypass,
          LRU-evicted, idle-expired) into the timeline.  Unarmed, the
          per-packet cost is a single branch (see the `obs-unarmed` entry
          in [BENCH_fastpath.json]). *)
  verify_checksums : bool;
      (** Validate IPv4/L4 checksums at classifier admission and reject
          stale packets as malformed (they drop before reaching any NF).
          Off by default: clean traces always verify, and the check costs
          a payload scan per packet.  The CLI arms it automatically when
          [--impair] can corrupt packets.  Packets with no parseable
          5-tuple are rejected regardless of this flag (in SpeedyBox
          mode; Original mode runs no classifier, so an NF's own parse
          failure is contained as a fault instead). *)
  state : Sb_state.Store.t;
      (** The chain's declared-cell state store (lib/state).  A sharded
          deployment passes one multi-shard store to every shard's config
          (each chain building against its own replica), making
          global-scope cells chain-wide; by default each runtime gets a
          private single-shard store. *)
}

val config :
  ?platform:Sb_sim.Platform.t ->
  ?mode:mode ->
  ?policy:Sb_mat.Parallel.policy ->
  ?fid_bits:int ->
  ?idle_timeout_cycles:int ->
  ?max_rules:int ->
  ?fastpath:Sb_mat.Global_mat.exec_mode ->
  ?fault_policy:Sb_fault.Health.policy ->
  ?injector:Sb_fault.Injector.t ->
  ?obs:Sb_obs.Sink.t ->
  ?verify_checksums:bool ->
  ?state:Sb_state.Store.t ->
  unit ->
  config
(** Defaults: BESS, SpeedyBox mode, Table I policy, 20-bit FIDs, no
    expiry, unbounded rule table, compiled fast path, default fault
    policy, no injector, disarmed observability sink, no checksum
    verification, private single-shard state store. *)

type t

val create : config -> Chain.t -> t
(** @raise Invalid_argument when the chain exceeds the platform's core
    budget (OpenNetVM chains are capped at 5 NFs, as on the paper's
    14-core testbed). *)

val chain : t -> Chain.t

val state : t -> Sb_state.Store.t
(** The config's state store — shared between shard runtimes when the
    deployment is sharded. *)

val global_mat : t -> Sb_mat.Global_mat.t

val classifier : t -> Classifier.t

val supervisor : t -> Sb_fault.Supervisor.t
(** The fault-containment state: per-NF health records and the
    contained/corrupted/stalled/quarantine counters. *)

val set_fault_listener : t -> (string -> unit) -> unit
(** [set_fault_listener t f] calls [f nf] after every fault this runtime
    records against NF [nf] (on either path, including event-update
    faults).  The sharded runtime uses this to broadcast NF health changes
    to sibling shards; the listener fires after local containment (health
    advance, fast-path flush on failure) has completed. *)

val absorb_remote_fault : t -> nf:string -> unit
(** [absorb_remote_fault t ~nf] advances [nf]'s health as if a fault had
    been recorded here — including tearing the fast path down when the NF
    crosses into [Failed] — without counting it in metrics or notifying
    the fault listener.  This is the receiving side of a sharded
    runtime's fault broadcast: the shard that owned the faulting packet
    already counted it. *)

val expired_flows : t -> int
(** Flows evicted by the idle timeout so far. *)

val rejected_malformed : t -> int
(** Packets rejected at the classifier so far — no parseable 5-tuple, or
    stale checksums under [verify_checksums].  Rejected packets drop with
    only the classifier stage charged and never touch conntrack, the
    MATs, or any NF. *)

type path = Slow_path | Fast_path

type output = {
  verdict : Sb_mat.Header_action.verdict;
  packet : Sb_packet.Packet.t;  (** the processed packet (final bytes) *)
  profile : Sb_sim.Cost_profile.t;
  path : path;
  latency_cycles : int;  (** end-to-end under the configured platform *)
  service_cycles : int;  (** per-packet cycles at the throughput bottleneck *)
  events_fired : int;
  faults : int;
      (** faults charged while processing this packet (contained raises,
          corrupted verdicts, injected stalls) — nonzero marks the packet's
          flow as fault-affected *)
}

val process_packet : t -> Sb_packet.Packet.t -> output
(** Processes one packet (mutating it).  In [Original] mode every packet
    walks the chain; in [Speedybox] mode the classifier routes it to the
    slow path (recording when it is the flow's initial packet) or to the
    Global MAT fast path, and FIN/RST tears the flow's rules down.

    Faults never propagate out: any raise from an NF [process] call, a
    recorded state function, or an event update is contained — the packet
    is dropped, the NF's health record advances, and in SpeedyBox mode the
    flow's consolidated state (Global MAT rule, Local MAT records, armed
    events, classifier mapping) is quarantined so the next packet starts
    from scratch. *)

val default_burst : int
(** The DPDK-style default burst size, 32. *)

val process_burst : t -> Sb_packet.Packet.t array -> output array
(** Processes a burst of packets (mutating them), semantically identical
    to {!process_packet} in sequence but cheaper per packet — the burst
    pipelines DPDK-style.  A pure prepare pass over the whole burst
    parses, hashes and FIDs every packet and prefetches the conntrack,
    Global MAT and liveness slots the later passes will probe; an observe
    pass advances conntrack and pre-resolves each packet's rule (a FIN/RST
    classification ends this pass, since executing it tears down conntrack
    state later same-flow packets would re-read); execution then uses each
    pre-resolved rule after re-validating it against
    {!Sb_mat.Global_mat.generation} (a pre-resolved miss is always
    re-probed — an earlier slow-path packet may have installed a rule
    without a generation bump).  Consecutive packets of one flow share a
    one-entry last-flow memo, so they cost a single Global MAT lookup;
    in-place event rewrites update the resolved rule record directly. *)

val process_burst_into :
  t -> Sb_packet.Packet.t array -> off:int -> len:int -> (int -> output -> unit) -> unit
(** [process_burst_into t packets ~off ~len emit] is {!process_burst} over
    [packets.(off .. off+len-1)] without materialising the output array:
    [emit k out] fires per packet in order, [k] relative to [off].  This
    is the allocation-free core {!process_burst} and {!run_trace} are built
    on, exposed for executors (the sharded runtime) that interleave bursts
    across several runtimes. *)

(** Aggregate statistics over a trace run. *)
type run_result = {
  packets : int;
  forwarded : int;
  dropped : int;
  slow_path : int;
  fast_path : int;
  events_fired : int;
  faulted_packets : int;  (** packets whose processing charged ≥ 1 fault *)
  latency_us : Sb_sim.Stats.t;  (** per-packet processing latency *)
  cycles_per_packet : Sb_sim.Stats.t;  (** per-packet latency cycles *)
  service : Sb_sim.Stats.t;  (** per-packet bottleneck service cycles *)
  flow_time_us : float Sb_flow.Flow_table.t;
      (** per-FID aggregated processing time (the paper's flow processing
          time metric, Fig. 9); packets without a 5-tuple (non-TCP/UDP)
          bucket under the sentinel {!no_flow_fid} — reporting surfaces
          that bucket as a named "non-flow" line, never as a raw FID *)
  stage_cycles : (string, Sb_sim.Stats.t) Hashtbl.t;
      (** per-stage-label cycle samples (one per packet that visited the
          stage) — where the chain's time actually goes *)
}

val no_flow_fid : int
(** The sentinel FID ([-1]) that buckets non-TCP/UDP packets in
    {!run_result.flow_time_us}. *)

val rate_mpps : run_result -> float
(** Sustained rate implied by the mean bottleneck service time. *)

(** The accumulator {!run_trace} folds outputs through, exposed so sharded
    executors build their {!run_result} via the identical code: feed one
    accumulator in global order (deterministic executor) or one per shard
    merged with {!Acc.absorb} (parallel executor). *)
module Acc : sig
  type acc

  val create : ?fid_bits:int -> unit -> acc
  (** [fid_bits] (default {!Sb_flow.Fid.default_bits}) must match the
      runtime's, for the flow-time fallback re-derivation. *)

  val consume : acc -> Sb_packet.Packet.t -> output -> unit
  (** [consume acc original out] folds one packet's output in; [original]
      is the packet as submitted (pre-processing), used to key the
      flow-time bucket when the chain dropped before classification. *)

  val absorb : acc -> acc -> unit
  (** [absorb dst src] merges [src]'s accumulation into [dst] ([src] is
      left untouched): counters add, sample sets union, flow-time buckets
      sum per FID. *)

  val result : acc -> run_result
end

val run_trace :
  ?on_output:(Sb_packet.Packet.t -> output -> unit) ->
  ?burst:int ->
  t ->
  Sb_packet.Packet.t list ->
  run_result
(** Runs the packets in order; [on_output original_input output] fires per
    packet (the first argument is the packet as submitted, before chain
    modifications — the runtime processes a private copy).  [burst]
    (default 1) batches the trace through {!process_burst} in chunks of
    that size; results are identical, processing is cheaper per packet.
    Without [on_output] the private copies live in reusable scratch
    buffers, so the replay loop allocates no packet per iteration.
    @raise Invalid_argument when [burst < 1]. *)
