type mode = Original | Speedybox

let pp_mode fmt m =
  Format.pp_print_string fmt (match m with Original -> "Original" | Speedybox -> "SpeedyBox")

type config = {
  platform : Sb_sim.Platform.t;
  mode : mode;
  policy : Sb_mat.Parallel.policy;
  fid_bits : int;
  idle_timeout_cycles : int option;
  max_rules : int option;
  fastpath : Sb_mat.Global_mat.exec_mode;
}

let config ?(platform = Sb_sim.Platform.Bess) ?(mode = Speedybox)
    ?(policy = Sb_mat.Parallel.Table_one) ?(fid_bits = Sb_flow.Fid.default_bits)
    ?idle_timeout_cycles ?max_rules ?(fastpath = Sb_mat.Global_mat.Compiled) () =
  { platform; mode; policy; fid_bits; idle_timeout_cycles; max_rules; fastpath }

type liveness = {
  mutable last_seen : int;
  tuple : Sb_flow.Five_tuple.t;
  node : Sb_flow.Lru.node;  (* position in the arrival-recency order *)
}

type t = {
  cfg : config;
  chain : Chain.t;
  global : Sb_mat.Global_mat.t;
  classifier : Classifier.t;
  live : liveness Sb_flow.Flow_table.t;  (* idle-expiry bookkeeping *)
  live_lru : Sb_flow.Lru.t;  (* coldest-first order for the idle sweep *)
  mutable expired : int;
  mutable packets_since_sweep : int;
}

let create cfg chain =
  (match Sb_sim.Platform.max_chain_length cfg.platform with
  | Some limit when Chain.length chain > limit ->
      invalid_arg
        (Printf.sprintf "Runtime.create: %s supports at most %d NFs (chain %s has %d)"
           (Sb_sim.Platform.name cfg.platform)
           limit (Chain.name chain) (Chain.length chain))
  | Some _ | None -> ());
  {
    cfg;
    chain;
    global =
      Sb_mat.Global_mat.create ~policy:cfg.policy ?max_rules:cfg.max_rules
        ~exec:cfg.fastpath
        (* an LRU-evicted flow loses its Local MAT records too, so its next
           packet re-records from scratch *)
        ~on_evict:(fun fid -> Chain.remove_flow chain fid)
        ();
    classifier = Classifier.create ~fid_bits:cfg.fid_bits ();
    live = Sb_flow.Flow_table.create ();
    live_lru = Sb_flow.Lru.create ();
    expired = 0;
    packets_since_sweep = 0;
  }

let chain t = t.chain

let global_mat t = t.global

let classifier t = t.classifier

let expired_flows t = t.expired

type path = Slow_path | Fast_path

type output = {
  verdict : Sb_mat.Header_action.verdict;
  packet : Sb_packet.Packet.t;
  profile : Sb_sim.Cost_profile.t;
  path : path;
  latency_cycles : int;
  service_cycles : int;
  events_fired : int;
}

(* Walk the original chain.  [recording] instruments the walk with Local
   MAT recording (the SpeedyBox initial-packet traversal); the extra
   recording cost is charged to each NF's stage. *)
let walk_chain t ~recording ~fid packet =
  let nfs = Chain.nfs t.chain in
  let mats = Chain.local_mats t.chain in
  let rec go nfs mats stages =
    match (nfs, mats) with
    | [], [] -> (Sb_mat.Header_action.Forwarded, List.rev stages)
    | nf :: nfs, mat :: mats -> (
        let ctx =
          { Api.fid; local_mat = mat; events = Chain.events t.chain; recording }
        in
        let result = nf.Nf.process ctx packet in
        let overhead =
          Sb_sim.Cycles.nf_rx_tx
          + if recording then Sb_sim.Cycles.local_mat_record else 0
        in
        let stage =
          Sb_sim.Cost_profile.serial_stage nf.Nf.name (result.Nf.cycles + overhead)
        in
        match result.Nf.verdict with
        | Sb_mat.Header_action.Dropped ->
            (Sb_mat.Header_action.Dropped, List.rev (stage :: stages))
        | Sb_mat.Header_action.Forwarded -> go nfs mats (stage :: stages))
    | _ -> assert false (* nfs and local_mats have equal length *)
  in
  go nfs mats []

let finish t verdict packet profile path events_fired =
  let latency_cycles, service_cycles =
    Sb_sim.Platform.latency_and_service t.cfg.platform profile
  in
  { verdict; packet; profile; path; latency_cycles; service_cycles; events_fired }

let process_original t packet =
  let verdict, stages = walk_chain t ~recording:false ~fid:(-1) packet in
  finish t verdict packet stages Slow_path 0

let cleanup t cls =
  Chain.remove_flow t.chain cls.Classifier.fid;
  Sb_mat.Global_mat.remove_flow t.global cls.Classifier.fid;
  Classifier.forget t.classifier cls.Classifier.tuple;
  (match Sb_flow.Flow_table.find t.live cls.Classifier.fid with
  | Some entry -> Sb_flow.Lru.remove t.live_lru entry.node
  | None -> ());
  Sb_flow.Flow_table.remove t.live cls.Classifier.fid

let sweep_interval = 64

(* Idle expiry: evict flows whose last packet arrived more than the
   configured timeout ago (arrival clock = packet ingress timestamps).
   The liveness entries sit in a recency list, so the periodic sweep walks
   from the cold end and stops at the first live flow — stale flows are
   found in O(stale), not O(table). *)
let expire_idle_flows t now =
  match t.cfg.idle_timeout_cycles with
  | None -> ()
  | Some timeout ->
      t.packets_since_sweep <- t.packets_since_sweep + 1;
      if t.packets_since_sweep >= sweep_interval then begin
        t.packets_since_sweep <- 0;
        Sb_flow.Lru.sweep t.live_lru (fun fid ->
            match Sb_flow.Flow_table.find t.live fid with
            | None -> false
            | Some entry ->
                if now - entry.last_seen > timeout then begin
                  Chain.remove_flow t.chain fid;
                  Sb_mat.Global_mat.remove_flow t.global fid;
                  Classifier.forget t.classifier entry.tuple;
                  Sb_flow.Lru.remove t.live_lru entry.node;
                  Sb_flow.Flow_table.remove t.live fid;
                  t.expired <- t.expired + 1;
                  true
                end
                else false)
      end

let record_arrival t cls now =
  let node = Sb_flow.Lru.add t.live_lru cls.Classifier.fid in
  Sb_flow.Flow_table.set t.live cls.Classifier.fid
    { last_seen = now; tuple = cls.Classifier.tuple; node }

let touch t cls now =
  match t.cfg.idle_timeout_cycles with
  | None -> ()
  | Some timeout ->
      (match Sb_flow.Flow_table.find t.live cls.Classifier.fid with
      | Some entry when now - entry.last_seen > timeout ->
          (* The flow idled out before this packet: tear its rules down so
             the packet re-walks and re-records, like a fresh flow. *)
          cleanup t cls;
          t.expired <- t.expired + 1;
          record_arrival t cls now
      | Some entry ->
          entry.last_seen <- now;
          Sb_flow.Lru.touch t.live_lru entry.node
      | None -> record_arrival t cls now);
      expire_idle_flows t now

(* Forwarded packets pay the metadata detach at egress; a dropped packet's
   descriptor is simply released.  One preallocated item, threaded into the
   Global MAT's stage assembly instead of appended after the fact. *)
let detach_item = Sb_sim.Cost_profile.Serial Sb_sim.Cycles.meta_detach

let process_speedybox t packet =
  let now = packet.Sb_packet.Packet.ingress_cycle in
  let cls = Classifier.classify t.classifier packet in
  touch t cls now;
  let fid = cls.Classifier.fid in
  let classifier_stage = Sb_sim.Cost_profile.serial_stage "Classifier" cls.Classifier.cycles in
  match Sb_mat.Global_mat.find t.global fid with
  | Some rule ->
      (* Fast path: the Global MAT handles the packet entirely; the rule
         found here is threaded through, so this is the only lookup. *)
      let result =
        Sb_mat.Global_mat.execute_rule ~egress_item:detach_item t.global
          (Chain.events t.chain) (Chain.local_mats t.chain) fid rule packet
      in
      if cls.Classifier.final then cleanup t cls;
      finish t result.Sb_mat.Global_mat.verdict packet
        [ classifier_stage; result.Sb_mat.Global_mat.stage ]
        Fast_path result.Sb_mat.Global_mat.events_fired
  | None -> begin
    (* Slow path; the flow's establishing packet also records — unless an
       NF opted out of consolidation (§IV-A3), in which case the chain
       never builds fast paths at all. *)
    let recording = cls.Classifier.established && Chain.consolidable t.chain in
    let verdict, stages = walk_chain t ~recording ~fid packet in
    let stages =
      if recording then begin
        let cost =
          Sb_mat.Global_mat.consolidate t.global fid (Chain.local_mats t.chain)
        in
        stages @ [ Sb_sim.Cost_profile.serial_stage "Consolidate" cost ]
      end
      else stages
    in
    if cls.Classifier.final then cleanup t cls;
    finish t verdict packet (classifier_stage :: stages) Slow_path 0
  end

let process_packet t packet =
  match t.cfg.mode with
  | Original -> process_original t packet
  | Speedybox -> process_speedybox t packet

type run_result = {
  packets : int;
  forwarded : int;
  dropped : int;
  slow_path : int;
  fast_path : int;
  events_fired : int;
  latency_us : Sb_sim.Stats.t;
  cycles_per_packet : Sb_sim.Stats.t;
  service : Sb_sim.Stats.t;
  flow_time_us : (int, float) Hashtbl.t;
  stage_cycles : (string, Sb_sim.Stats.t) Hashtbl.t;
}

let rate_mpps r =
  let mean = Sb_sim.Stats.mean r.service in
  if Float.is_nan mean then nan
  else Sb_sim.Cycles.rate_mpps (int_of_float (Float.round mean))

let run_trace ?on_output t packets =
  let forwarded = ref 0
  and dropped = ref 0
  and slow = ref 0
  and fast = ref 0
  and fired = ref 0 in
  let latency_us = Sb_sim.Stats.create () in
  let cycles_per_packet = Sb_sim.Stats.create () in
  let service = Sb_sim.Stats.create () in
  let flow_time_us : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let stage_cycles : (string, Sb_sim.Stats.t) Hashtbl.t = Hashtbl.create 16 in
  let record_stage stage =
    let stats =
      match Hashtbl.find_opt stage_cycles stage.Sb_sim.Cost_profile.label with
      | Some s -> s
      | None ->
          let s = Sb_sim.Stats.create () in
          Hashtbl.replace stage_cycles stage.Sb_sim.Cost_profile.label s;
          s
    in
    Sb_sim.Stats.add_int stats (Sb_sim.Cost_profile.stage_cycles stage)
  in
  let count = ref 0 in
  List.iter
    (fun original ->
      incr count;
      let packet = Sb_packet.Packet.copy original in
      let out = process_packet t packet in
      (match out.verdict with
      | Sb_mat.Header_action.Forwarded -> incr forwarded
      | Sb_mat.Header_action.Dropped -> incr dropped);
      (match out.path with Slow_path -> incr slow | Fast_path -> incr fast);
      fired := !fired + out.events_fired;
      List.iter record_stage out.profile;
      let us = Sb_sim.Cycles.to_microseconds out.latency_cycles in
      Sb_sim.Stats.add latency_us us;
      Sb_sim.Stats.add_int cycles_per_packet out.latency_cycles;
      Sb_sim.Stats.add_int service out.service_cycles;
      let key =
        if out.packet.Sb_packet.Packet.fid >= 0 then out.packet.Sb_packet.Packet.fid
        else
          Sb_flow.Fid.of_tuple ~bits:t.cfg.fid_bits
            (Sb_flow.Five_tuple.of_packet original)
      in
      Hashtbl.replace flow_time_us key
        (Option.value (Hashtbl.find_opt flow_time_us key) ~default:0. +. us);
      Option.iter (fun f -> f original out) on_output)
    packets;
  {
    packets = !count;
    forwarded = !forwarded;
    dropped = !dropped;
    slow_path = !slow;
    fast_path = !fast;
    events_fired = !fired;
    latency_us;
    cycles_per_packet;
    service;
    flow_time_us;
    stage_cycles;
  }
