type mode = Original | Speedybox

let pp_mode fmt m =
  Format.pp_print_string fmt (match m with Original -> "Original" | Speedybox -> "SpeedyBox")

type config = {
  platform : Sb_sim.Platform.t;
  mode : mode;
  policy : Sb_mat.Parallel.policy;
  fid_bits : int;
  idle_timeout_cycles : int option;
  max_rules : int option;
  fastpath : Sb_mat.Global_mat.exec_mode;
  fault_policy : Sb_fault.Health.policy;
  injector : Sb_fault.Injector.t option;
  obs : Sb_obs.Sink.t;
  verify_checksums : bool;
  state : Sb_state.Store.t;
      (* the chain's declared-cell state store; shared across shard
         runtimes in a sharded deployment, private otherwise *)
}

let config ?(platform = Sb_sim.Platform.Bess) ?(mode = Speedybox)
    ?(policy = Sb_mat.Parallel.Table_one) ?(fid_bits = Sb_flow.Fid.default_bits)
    ?idle_timeout_cycles ?max_rules ?(fastpath = Sb_mat.Global_mat.Compiled)
    ?(fault_policy = Sb_fault.Health.default_policy) ?injector
    ?(obs = Sb_obs.Sink.null) ?(verify_checksums = false) ?state () =
  let state =
    match state with Some s -> s | None -> Sb_state.Store.create ~shards:1 ()
  in
  {
    platform;
    mode;
    policy;
    fid_bits;
    idle_timeout_cycles;
    max_rules;
    fastpath;
    fault_policy;
    injector;
    obs;
    verify_checksums;
    state;
  }

(* Hot-path metric instruments, resolved against the registry once at
   construction so per-packet recording is field updates only — the
   registry's hashtable is never touched while packets flow. *)
type instruments = {
  c_slow : Sb_obs.Metrics.Counter.t;
  c_fast : Sb_obs.Metrics.Counter.t;
  c_forwarded : Sb_obs.Metrics.Counter.t;
  c_dropped : Sb_obs.Metrics.Counter.t;
  h_latency_slow : Sb_obs.Histogram.t;
  h_latency_fast : Sb_obs.Histogram.t;
  h_sojourn : Sb_obs.Histogram.t option;
      (* per-shard end-to-end sojourn, resolved only when the sink is a
         split child (carries a shard index) *)
}

type t = {
  cfg : config;
  chain : Chain.t;
  global : Sb_mat.Global_mat.t;
  classifier : Classifier.t;
  sup : Sb_fault.Supervisor.t;
  nf_names : string array;
  live : Sb_flow.Live_table.t;
      (* idle-expiry bookkeeping, SoA: the per-packet liveness touch is
         one probe plus one int-lane store, no boxed record per flow *)
  wheel : Sb_flow.Timer_wheel.t option;  (* Some iff idle expiry is on *)
  mutable expired : int;
  mutable live_epoch : int;  (* next incarnation tag for [live] entries *)
  ins : instruments option;  (* Some iff cfg.obs carries a metrics registry *)
  mutable obs_now_us : float;  (* simulated clock for hooks without a packet
                                  in hand (the LRU-eviction callback) *)
  mutable cls_scratch : Classifier.classification array;
      (* per-burst classification scratch, grown to the largest burst seen *)
  mutable rule_scratch : Sb_mat.Global_mat.rule option array;
      (* per-burst pre-resolved rules (the prescan's pipelined Global MAT
         probes), validated against the MAT generation at execution *)
  mutable fault_listener : (string -> unit) option;
      (* notified after every locally-recorded fault — how a sharded
         runtime broadcasts NF health changes to its sibling shards *)
}

(* A Failed NF invalidates every consolidated rule embedding its closures:
   tear the whole fast path down (flows re-record under the failure
   policy).  Local MAT records and events go with each rule so no stale
   per-NF state survives the failure. *)
let flush_fast_state t =
  let fids = Sb_mat.Global_mat.fold (fun fid _ acc -> fid :: acc) t.global [] in
  List.iter
    (fun fid ->
      Chain.remove_flow t.chain fid;
      Sb_mat.Global_mat.remove_flow t.global fid)
    fids

let note_fault t ~nf =
  (match Sb_fault.Supervisor.record_fault t.sup ~nf with
  | Sb_fault.Health.To_failed -> flush_fast_state t
  | Sb_fault.Health.To_degraded | Sb_fault.Health.No_change -> ());
  match t.fault_listener with Some f -> f nf | None -> ()

let set_fault_listener t f = t.fault_listener <- Some f

(* A fault another shard recorded (and already counted): keep this
   runtime's view of the NF's health in lock-step, including the fast-path
   flush when the NF crosses into [Failed], without re-emitting metrics or
   re-notifying the listener (which would echo the broadcast forever). *)
let absorb_remote_fault t ~nf =
  match Sb_fault.Supervisor.absorb_fault t.sup ~nf with
  | Sb_fault.Health.To_failed -> flush_fast_state t
  | Sb_fault.Health.To_degraded | Sb_fault.Health.No_change -> ()

(* Flow-timeline hook.  Callers on the per-packet path guard with
   [Sb_obs.Sink.armed] first; every call site is on the slow path or a
   rare-event path, so the unarmed fast path never reaches here. *)
let obs_timeline t ~fid ~ts_us ?detail kind =
  if fid >= 0 then
    match Sb_obs.Sink.timeline t.cfg.obs with
    | Some tl -> Sb_obs.Timeline.record tl ~fid ~ts_us ?detail kind
    | None -> ()

let create cfg chain =
  (match Sb_sim.Platform.max_chain_length cfg.platform with
  | Some limit when Chain.length chain > limit ->
      invalid_arg
        (Printf.sprintf "Runtime.create: %s supports at most %d NFs (chain %s has %d)"
           (Sb_sim.Platform.name cfg.platform)
           limit (Chain.name chain) (Chain.length chain))
  | Some _ | None -> ());
  (* The eviction callback is built before [t] exists but must reach the
     timeline with the current simulated clock; the cell is pointed at the
     real hook once [t] is constructed. *)
  let evict_hook = ref (fun (_ : Sb_flow.Fid.t) -> ()) in
  let ins =
    match Sb_obs.Sink.metrics cfg.obs with
    | None -> None
    | Some m ->
        let chain_label = ("chain", Chain.name chain) in
        let packets path =
          Sb_obs.Metrics.counter m
            ~help:"Packets processed, by execution path"
            ~labels:[ chain_label; ("path", path) ]
            "speedybox_packets_total"
        in
        let verdicts v =
          Sb_obs.Metrics.counter m
            ~help:"Packet verdicts leaving the chain"
            ~labels:[ chain_label; ("verdict", v) ]
            "speedybox_verdicts_total"
        in
        let latency path =
          Sb_obs.Metrics.histogram m
            ~help:"Per-packet processing latency in microseconds"
            ~labels:[ chain_label; ("path", path) ]
            "speedybox_packet_latency_us"
        in
        let sojourn =
          (* Only a split child sink carries a shard index: per-shard
             sojourn series exist exactly when the run is sharded. *)
          match Sb_obs.Sink.shard cfg.obs with
          | s when s < 0 -> None
          | s ->
              Some
                (Sb_obs.Metrics.histogram m
                   ~help:"Per-packet sojourn on this shard in microseconds"
                   ~labels:[ chain_label; ("shard", string_of_int s) ]
                   "speedybox_shard_sojourn_us")
        in
        Some
          {
            c_slow = packets "slow";
            c_fast = packets "fast";
            c_forwarded = verdicts "forwarded";
            c_dropped = verdicts "dropped";
            h_latency_slow = latency "slow";
            h_latency_fast = latency "fast";
            h_sojourn = sojourn;
          }
  in
  let t =
    {
      cfg;
      chain;
      global =
        Sb_mat.Global_mat.create ~policy:cfg.policy ?max_rules:cfg.max_rules
          ~exec:cfg.fastpath ~obs:cfg.obs
          (* an LRU-evicted flow loses its Local MAT records too, so its next
             packet re-records from scratch *)
          ~on_evict:(fun fid ->
            Chain.remove_flow chain fid;
            !evict_hook fid)
          ();
      classifier =
        Classifier.create ~fid_bits:cfg.fid_bits ~verify_checksums:cfg.verify_checksums ();
      sup = Sb_fault.Supervisor.create ?injector:cfg.injector ~obs:cfg.obs cfg.fault_policy;
      nf_names = Array.of_list (List.map (fun nf -> nf.Nf.name) (Chain.nfs chain));
      live = Sb_flow.Live_table.create ();
      wheel =
        (match cfg.idle_timeout_cycles with
        | None -> None
        | Some timeout ->
            Some
              (Sb_flow.Timer_wheel.create
                 ~tick_shift:(Sb_flow.Timer_wheel.tick_shift_for_timeout timeout)));
      expired = 0;
      live_epoch = 0;
      ins;
      obs_now_us = 0.;
      cls_scratch = [||];
      rule_scratch = [||];
      fault_listener = None;
    }
  in
  if Sb_obs.Sink.armed cfg.obs then begin
    Sb_mat.Event_table.set_obs (Chain.events chain) cfg.obs;
    evict_hook := fun fid -> obs_timeline t ~fid ~ts_us:t.obs_now_us Sb_obs.Timeline.Evicted
  end;
  (* Raising event conditions are contained inside the Event Table; route
     them here so they still advance the registering NF's health. *)
  Sb_mat.Event_table.set_fault_hook (Chain.events chain) (fun nf _exn ->
      Sb_fault.Supervisor.record_contained t.sup;
      note_fault t ~nf);
  t

let chain t = t.chain

let state t = t.cfg.state

let global_mat t = t.global

let classifier t = t.classifier

let supervisor t = t.sup

let expired_flows t = t.expired

let rejected_malformed t = Classifier.rejected t.classifier

type path = Slow_path | Fast_path

type output = {
  verdict : Sb_mat.Header_action.verdict;
  packet : Sb_packet.Packet.t;
  profile : Sb_sim.Cost_profile.t;
  path : path;
  latency_cycles : int;
  service_cycles : int;
  events_fired : int;
  faults : int;
}

let flip_verdict = function
  | Sb_mat.Header_action.Forwarded -> Sb_mat.Header_action.Dropped
  | Sb_mat.Header_action.Dropped -> Sb_mat.Header_action.Forwarded

let injected_raise t name =
  let call =
    match Sb_fault.Supervisor.injector t.sup with
    | Some inj -> Sb_fault.Injector.calls inj ~nf:name
    | None -> 0
  in
  Sb_fault.Injector.Injected (name, call)

type walk = {
  w_verdict : Sb_mat.Header_action.verdict;
  w_stages : Sb_sim.Cost_profile.stage list;
  w_faults : int;
  w_contained : bool;  (* a raise was contained mid-walk: quarantine the flow *)
}

(* Walk the original chain.  [recording] instruments the walk with Local
   MAT recording (the SpeedyBox initial-packet traversal); the extra
   recording cost is charged to each NF's stage.  Every NF call runs under
   the containment wrapper: a raise (injected or organic) drops the packet,
   charges the fault to the NF and tells the caller to quarantine the
   flow's recorded state. *)
let walk_chain t ~recording ~fid packet =
  let sup = t.sup in
  let nfs = Chain.nfs t.chain in
  let mats = Chain.local_mats t.chain in
  let rec go nfs mats stages faults =
    match (nfs, mats) with
    | [], [] ->
        {
          w_verdict = Sb_mat.Header_action.Forwarded;
          w_stages = List.rev stages;
          w_faults = faults;
          w_contained = false;
        }
    | nf :: nfs, mat :: mats -> (
        let name = nf.Nf.name in
        let ctx =
          { Api.fid; local_mat = mat; events = Chain.events t.chain; recording }
        in
        let overhead =
          Sb_sim.Cycles.nf_rx_tx
          + if recording then Sb_sim.Cycles.local_mat_record else 0
        in
        let gate =
          if Sb_fault.Supervisor.active sup then Sb_fault.Supervisor.gate sup ~nf:name
          else Sb_fault.Supervisor.Run
        in
        match gate with
        | Sb_fault.Supervisor.Bypass_nf ->
            (* Failed NF elided from the chain: the packet only transits the
               port; nothing records, so rebuilt fast paths omit the NF. *)
            if Sb_obs.Sink.armed t.cfg.obs then
              obs_timeline t ~fid
                ~ts_us:(Sb_sim.Cycles.to_microseconds packet.Sb_packet.Packet.ingress_cycle)
                ~detail:name Sb_obs.Timeline.Degraded_bypass;
            let stage = Sb_sim.Cost_profile.serial_stage name Sb_sim.Cycles.nf_rx_tx in
            go nfs mats (stage :: stages) faults
        | Sb_fault.Supervisor.Drop_packet ->
            (* Failed NF under Drop_flow: the drop records like an ordinary
               verdict, so the flow's fast path early-drops. *)
            Api.localmat_add_ha ctx Sb_mat.Header_action.Drop;
            let stage =
              Sb_sim.Cost_profile.serial_stage name
                (Sb_sim.Cycles.nf_rx_tx + Sb_sim.Cycles.ha_drop)
            in
            {
              w_verdict = Sb_mat.Header_action.Dropped;
              w_stages = List.rev (stage :: stages);
              w_faults = faults;
              w_contained = false;
            }
        | Sb_fault.Supervisor.Run -> (
            let injected =
              if Sb_fault.Supervisor.active sup then Sb_fault.Supervisor.draw sup ~nf:name
              else None
            in
            match
              match injected with
              | Some Sb_fault.Injector.Raise -> raise (injected_raise t name)
              | Some Sb_fault.Injector.Corrupt_verdict
              | Some Sb_fault.Injector.Stall
              | None ->
                  nf.Nf.process ctx packet
            with
            | exception _exn ->
                (* Containment: the fault is this NF's, the packet is
                   dropped, the flow's partial records are quarantined. *)
                note_fault t ~nf:name;
                Sb_fault.Supervisor.record_contained sup;
                Sb_fault.Supervisor.record_faulted_packet sup;
                let stage =
                  Sb_sim.Cost_profile.serial_stage name
                    (overhead + Sb_sim.Cycles.fault_contain)
                in
                {
                  w_verdict = Sb_mat.Header_action.Dropped;
                  w_stages = List.rev (stage :: stages);
                  w_faults = faults + 1;
                  w_contained = true;
                }
            | result -> (
                let result, faults =
                  match injected with
                  | Some Sb_fault.Injector.Corrupt_verdict ->
                      note_fault t ~nf:name;
                      Sb_fault.Supervisor.record_corrupted sup;
                      Sb_fault.Supervisor.record_faulted_packet sup;
                      ( { result with Nf.verdict = flip_verdict result.Nf.verdict },
                        faults + 1 )
                  | Some Sb_fault.Injector.Stall ->
                      note_fault t ~nf:name;
                      Sb_fault.Supervisor.record_stalled sup;
                      ( {
                          result with
                          Nf.cycles =
                            result.Nf.cycles + Sb_fault.Supervisor.stall_cycles sup;
                        },
                        faults + 1 )
                  | Some Sb_fault.Injector.Raise | None -> (result, faults)
                in
                let stage =
                  Sb_sim.Cost_profile.serial_stage name (result.Nf.cycles + overhead)
                in
                match result.Nf.verdict with
                | Sb_mat.Header_action.Dropped ->
                    {
                      w_verdict = Sb_mat.Header_action.Dropped;
                      w_stages = List.rev (stage :: stages);
                      w_faults = faults;
                      w_contained = false;
                    }
                | Sb_mat.Header_action.Forwarded -> go nfs mats (stage :: stages) faults)))
    | _ -> assert false (* nfs and local_mats have equal length *)
  in
  go nfs mats [] 0

let finish t verdict packet profile path events_fired faults =
  let latency_cycles, service_cycles =
    Sb_sim.Platform.latency_and_service t.cfg.platform profile
  in
  {
    verdict;
    packet;
    profile;
    path;
    latency_cycles;
    service_cycles;
    events_fired;
    faults;
  }

let process_original t packet =
  let w = walk_chain t ~recording:false ~fid:(-1) packet in
  finish t w.w_verdict packet w.w_stages Slow_path 0 w.w_faults

let cleanup t cls =
  Chain.remove_flow t.chain cls.Classifier.fid;
  Sb_mat.Global_mat.remove_flow t.global cls.Classifier.fid;
  Classifier.forget t.classifier cls.Classifier.tuple;
  (* Any timer-wheel entry for the flow dangles until it fires, where its
     stale epoch identifies it as dead — O(1) now beats finding it in its
     slot. *)
  Sb_flow.Live_table.remove t.live cls.Classifier.fid

let expire_flow t fid ~tuple now =
  Chain.remove_flow ~tuple t.chain fid;
  Sb_mat.Global_mat.remove_flow t.global fid;
  Classifier.forget t.classifier tuple;
  Sb_flow.Live_table.remove t.live fid;
  t.expired <- t.expired + 1;
  if Sb_obs.Sink.armed t.cfg.obs then
    obs_timeline t ~fid ~ts_us:(Sb_sim.Cycles.to_microseconds now)
      ~detail:"idle timer" Sb_obs.Timeline.Idle_expired

(* Idle expiry: evict flows whose last packet arrived more than the
   configured timeout ago (arrival clock = packet ingress timestamps).
   Each recorded flow arms a one-shot timer-wheel entry; a packet for a
   live flow only rewrites [last_seen] (no wheel operation), and a firing
   timer either expires the flow or lazily re-arms at [last_seen +
   timeout].  Advancing past quiet stretches is O(ticks), not O(flows), so
   the cost stays flat at a million tracked flows. *)
let expire_idle_flows t wheel timeout now =
  Sb_flow.Timer_wheel.advance wheel ~now (fun fid stamp ->
      let live = t.live in
      let s = Sb_flow.Live_table.probe live fid in
      if s >= 0 && Sb_flow.Live_table.epoch_at live s = stamp then begin
        let last_seen = Sb_flow.Live_table.last_seen_at live s in
        if now - last_seen > timeout then begin
          expire_flow t fid ~tuple:(Sb_flow.Live_table.tuple_at live s) now;
          Sb_flow.Timer_wheel.Expire
        end
        else Sb_flow.Timer_wheel.Rearm (last_seen + timeout)
      end
      else
        (* A stale incarnation: the flow was cleaned up (and possibly
           re-recorded with a fresh stamp) since this timer was armed. *)
        Sb_flow.Timer_wheel.Expire)

let record_arrival t wheel timeout cls now =
  let epoch = t.live_epoch in
  t.live_epoch <- epoch + 1;
  Sb_flow.Live_table.set t.live cls.Classifier.fid ~last_seen:now ~epoch
    ~tuple:cls.Classifier.tuple;
  Sb_flow.Timer_wheel.add wheel ~key:cls.Classifier.fid ~stamp:epoch
    ~deadline:(now + timeout)

let touch t cls now =
  match (t.cfg.idle_timeout_cycles, t.wheel) with
  | None, _ | _, None -> ()
  | Some timeout, Some wheel ->
      (* Fire due timers first: if the arriving flow itself idled out, the
         wheel tears it down here and the packet re-records below like a
         fresh flow. *)
      expire_idle_flows t wheel timeout now;
      let live = t.live in
      let s = Sb_flow.Live_table.probe live cls.Classifier.fid in
      if s < 0 then record_arrival t wheel timeout cls now
      else if now - Sb_flow.Live_table.last_seen_at live s > timeout then begin
        (* Only reachable when arrivals outrun the wheel's tick
           quantisation: treat exactly like a wheel-fired expiry. *)
        cleanup t cls;
        t.expired <- t.expired + 1;
        if Sb_obs.Sink.armed t.cfg.obs then
          obs_timeline t ~fid:cls.Classifier.fid
            ~ts_us:(Sb_sim.Cycles.to_microseconds now)
            ~detail:"expired on arrival" Sb_obs.Timeline.Idle_expired;
        record_arrival t wheel timeout cls now
      end
      else Sb_flow.Live_table.set_last_seen_at live s now

(* Forwarded packets pay the metadata detach at egress; a dropped packet's
   descriptor is simply released.  One preallocated item, threaded into the
   Global MAT's stage assembly instead of appended after the fact. *)
let detach_item = Sb_sim.Cost_profile.Serial Sb_sim.Cycles.meta_detach

(* Containment of a fast-path fault: count it, quarantine the flow's
   consolidated state (Global MAT rule, Local MAT records, events,
   classifier mapping) and drop the packet.  The flow's next packet
   re-records from scratch — or runs Original when recording is no longer
   allowed. *)
let contain_fast_path t cls classifier_stage inj_faults ~nf ~now =
  note_fault t ~nf;
  Sb_fault.Supervisor.record_contained t.sup;
  Sb_fault.Supervisor.record_faulted_packet t.sup;
  cleanup t cls;
  Sb_fault.Supervisor.record_quarantine t.sup;
  if Sb_obs.Sink.armed t.cfg.obs then
    obs_timeline t ~fid:cls.Classifier.fid ~ts_us:(Sb_sim.Cycles.to_microseconds now)
      ~detail:nf Sb_obs.Timeline.Quarantined;
  let stage =
    Sb_sim.Cost_profile.serial_stage "GlobalMAT"
      (Sb_sim.Cycles.fast_path_lookup + Sb_sim.Cycles.fault_contain)
  in
  (classifier_stage, stage, inj_faults + 1)

(* The body shared by the per-packet and burst paths: [cls] has been
   classified (and [touch]ed) by the caller, and [rule_opt] is the Global
   MAT resolution — a plain [find] per packet, or the burst loop's
   last-flow memo. *)
let process_with_rule t packet cls rule_opt =
  let now = packet.Sb_packet.Packet.ingress_cycle in
  let fid = cls.Classifier.fid in
  let classifier_stage = Sb_sim.Cost_profile.serial_stage "Classifier" cls.Classifier.cycles in
  match rule_opt with
  | Some rule -> (
      (* Mirror the slow path's per-NF injector consultation — one draw per
         NF per packet — so a fault schedule is path-independent. *)
      let corrupts = ref 0 and stalls = ref 0 and raised = ref None in
      let injected = ref 0 in
      if Sb_fault.Supervisor.active t.sup then
        Array.iter
          (fun name ->
            match Sb_fault.Supervisor.draw t.sup ~nf:name with
            | None -> ()
            | Some kind -> (
                incr injected;
                note_fault t ~nf:name;
                match kind with
                | Sb_fault.Injector.Raise ->
                    Sb_fault.Supervisor.record_contained t.sup;
                    if !raised = None then raised := Some name
                | Sb_fault.Injector.Corrupt_verdict ->
                    Sb_fault.Supervisor.record_corrupted t.sup;
                    incr corrupts
                | Sb_fault.Injector.Stall ->
                    Sb_fault.Supervisor.record_stalled t.sup;
                    incr stalls))
          t.nf_names;
      let n_injected = !injected in
      match !raised with
      | Some nf ->
          (* The injected crash aborts the rule execution: drop the packet
             and quarantine the flow (its next packet re-records). *)
          Sb_fault.Supervisor.record_faulted_packet t.sup;
          cleanup t cls;
          Sb_fault.Supervisor.record_quarantine t.sup;
          if Sb_obs.Sink.armed t.cfg.obs then
            obs_timeline t ~fid ~ts_us:(Sb_sim.Cycles.to_microseconds now) ~detail:nf
              Sb_obs.Timeline.Quarantined;
          let stage =
            Sb_sim.Cost_profile.serial_stage "GlobalMAT"
              (Sb_sim.Cycles.fast_path_lookup + Sb_sim.Cycles.fault_contain)
          in
          finish t Sb_mat.Header_action.Dropped packet [ classifier_stage; stage ]
            Fast_path 0 n_injected
      | None -> (
          match
            Sb_mat.Global_mat.execute_rule ~egress_item:detach_item t.global
              (Chain.events t.chain) (Chain.local_mats t.chain) fid rule packet
          with
          | exception exn ->
              (* An organic fast-path fault — a raising state function or
                 event update — attributed to its NF when known. *)
              let nf =
                match exn with
                | Sb_fault.Fault.Nf_fault (nf, _, _) -> nf
                | _ -> "GlobalMAT"
              in
              let classifier_stage, stage, faults =
                contain_fast_path t cls classifier_stage n_injected ~nf ~now
              in
              finish t Sb_mat.Header_action.Dropped packet [ classifier_stage; stage ]
                Fast_path 0 faults
          | result ->
              let verdict =
                if !corrupts land 1 = 1 then flip_verdict result.Sb_mat.Global_mat.verdict
                else result.Sb_mat.Global_mat.verdict
              in
              if !corrupts > 0 then Sb_fault.Supervisor.record_faulted_packet t.sup;
              let stages =
                [ classifier_stage; result.Sb_mat.Global_mat.stage ]
                @
                if !stalls > 0 then
                  [
                    Sb_sim.Cost_profile.serial_stage "InjectedStall"
                      (!stalls * Sb_fault.Supervisor.stall_cycles t.sup);
                  ]
                else []
              in
              if cls.Classifier.final then cleanup t cls;
              finish t verdict packet stages Fast_path
                result.Sb_mat.Global_mat.events_fired n_injected))
  | None -> begin
    (* Slow path; the flow's establishing packet also records — unless an
       NF opted out of consolidation (§IV-A3) or the fault layer no longer
       trusts the chain (a Degraded NF, or a Failed one pinned to the slow
       path), in which case no fast path is built. *)
    if Sb_obs.Sink.armed t.cfg.obs then begin
      (* Keep the hook clock current before consolidation can LRU-evict. *)
      t.obs_now_us <- Sb_sim.Cycles.to_microseconds now;
      (match Sb_obs.Sink.timeline t.cfg.obs with
      | Some tl when not (Sb_obs.Timeline.known tl fid) ->
          obs_timeline t ~fid ~ts_us:t.obs_now_us ~detail:(Chain.name t.chain)
            Sb_obs.Timeline.First_packet
      | Some _ | None -> ())
    end;
    let recording =
      cls.Classifier.established && Chain.consolidable t.chain
      && ((not (Sb_fault.Supervisor.active t.sup))
         || Sb_fault.Supervisor.allow_recording t.sup t.nf_names)
    in
    let w = walk_chain t ~recording ~fid packet in
    if w.w_contained then begin
      (* Quarantine: the walk's partial Local MAT records and events must
         not leak into a rule; the flow's next packet starts fresh. *)
      cleanup t cls;
      Sb_fault.Supervisor.record_quarantine t.sup;
      if Sb_obs.Sink.armed t.cfg.obs then
        obs_timeline t ~fid ~ts_us:(Sb_sim.Cycles.to_microseconds now)
          ~detail:"slow-path walk" Sb_obs.Timeline.Quarantined
    end;
    let stages =
      if recording && not w.w_contained then begin
        let cost =
          Sb_mat.Global_mat.consolidate t.global fid (Chain.local_mats t.chain)
        in
        if Sb_obs.Sink.armed t.cfg.obs then
          obs_timeline t ~fid ~ts_us:t.obs_now_us Sb_obs.Timeline.Consolidated;
        w.w_stages @ [ Sb_sim.Cost_profile.serial_stage "Consolidate" cost ]
      end
      else w.w_stages
    in
    if cls.Classifier.final && not w.w_contained then cleanup t cls;
    finish t w.w_verdict packet (classifier_stage :: stages) Slow_path 0 w.w_faults
  end

(* A malformed packet (no 5-tuple, or stale checksums under
   [verify_checksums]) is rejected at the classifier: it never reaches an
   NF, never touches conntrack or the liveness tables, and cannot perturb
   the burst path's rule memo. *)
let process_malformed t packet cls =
  let classifier_stage = Sb_sim.Cost_profile.serial_stage "Classifier" cls.Classifier.cycles in
  finish t Sb_mat.Header_action.Dropped packet [ classifier_stage ] Slow_path 0 0

let process_speedybox t packet =
  let now = packet.Sb_packet.Packet.ingress_cycle in
  let cls = Classifier.classify t.classifier packet in
  if cls.Classifier.malformed then process_malformed t packet cls
  else begin
    touch t cls now;
    process_with_rule t packet cls (Sb_mat.Global_mat.find t.global cls.Classifier.fid)
  end

(* Everything observability learns per packet derives from the [output]
   the executor produced anyway, so one armed-sink branch after processing
   covers metrics and tracing for both paths and both modes — the unarmed
   fast path pays exactly that branch and nothing else. *)
let instrument t packet out =
  let obs = t.cfg.obs in
  let fid = out.packet.Sb_packet.Packet.fid in
  let ts0 = Sb_sim.Cycles.to_microseconds packet.Sb_packet.Packet.ingress_cycle in
  t.obs_now_us <- ts0;
  (match t.ins with
  | Some ins ->
      let latency_us = Sb_sim.Cycles.to_microseconds out.latency_cycles in
      (match out.path with
      | Slow_path ->
          Sb_obs.Metrics.Counter.incr ins.c_slow;
          Sb_obs.Histogram.observe ins.h_latency_slow latency_us
      | Fast_path ->
          Sb_obs.Metrics.Counter.incr ins.c_fast;
          Sb_obs.Histogram.observe ins.h_latency_fast latency_us);
      (match out.verdict with
      | Sb_mat.Header_action.Forwarded -> Sb_obs.Metrics.Counter.incr ins.c_forwarded
      | Sb_mat.Header_action.Dropped -> Sb_obs.Metrics.Counter.incr ins.c_dropped);
      (match ins.h_sojourn with
      | Some h -> Sb_obs.Histogram.observe h latency_us
      | None -> ())
  | None -> ());
  (* Snapshot cadence rides the same armed branch; derives from the
     simulated clock, so snapshot series are deterministic. *)
  Sb_obs.Sink.packet_tick obs ~now_us:ts0;
  match Sb_obs.Sink.tracer obs with
  | Some tr when Sb_obs.Tracer.sampled tr fid ->
      (* One span per visited stage: per-NF spans on the slow path, one
         compiled-program (GlobalMAT) span on the fast path, plus the
         Classifier and Consolidate stages.  Span times tile the packet's
         stage sequence starting at its ingress timestamp. *)
      let cat = match out.path with Slow_path -> "slow" | Fast_path -> "fast" in
      let ts = ref ts0 in
      List.iter
        (fun (stage : Sb_sim.Cost_profile.stage) ->
          let dur =
            Sb_sim.Cycles.to_microseconds (Sb_sim.Cost_profile.stage_cycles stage)
          in
          let cat =
            if String.equal stage.Sb_sim.Cost_profile.label "Consolidate" then
              "consolidate"
            else cat
          in
          Sb_obs.Tracer.record tr ~name:stage.Sb_sim.Cost_profile.label ~cat
            ~ts_us:!ts ~dur_us:dur ~tid:fid [];
          ts := !ts +. dur)
        out.profile
  | Some _ | None -> ()

let process_packet t packet =
  let out =
    match t.cfg.mode with
    | Original -> process_original t packet
    | Speedybox -> process_speedybox t packet
  in
  if Sb_obs.Sink.armed t.cfg.obs then instrument t packet out;
  out

(* ---- Burst processing ---- *)

let default_burst = 32

let ensure_cls_scratch t n =
  if Array.length t.cls_scratch < n then begin
    t.cls_scratch <- Array.init n (fun _ -> Classifier.scratch ());
    t.rule_scratch <- Array.make n None
  end;
  t.cls_scratch

(* Process [packets.(off .. off+len-1)] as one burst, calling [emit k out]
   for each packet in order ([k] relative to [off]).

   The burst is classified ahead of execution — amortizing tuple
   extraction, FID hashing and conntrack probes over the batch — with one
   restriction: a FIN/RST ([final]) classification ends the prescan,
   because its execution tears down the flow's conntrack entry and a
   same-flow packet classified beyond it would read state the per-packet
   order has already erased (a retained [Closing] where a fresh flow would
   re-establish).  Every other mid-burst state change (fault quarantine,
   idle expiry) yields the same classification either way.

   Prescan phase one ([Classifier.prepare_into], the whole burst) is a
   pure function of the packet bytes — tuple, one FNV hash, FID — and
   issues prefetch hints for the three tables the later passes will probe
   (conntrack slot, Global MAT rule slot, liveness slot), so the line
   fills for packet [k]'s probes are in flight while packets [k+1 .. n-1]
   are still being parsed.  Phase two observes conntrack and pre-resolves
   each packet's rule on the now-warm slots, hinting the rule record
   itself for the executor.

   Execution resolves each packet's rule from the pre-probe, guarded two
   ways: a pre-resolved rule is used only while the MAT's generation is
   unchanged (any eviction, removal or quarantine bumps it), and an
   absent rule is always re-probed (an earlier slow-path packet in the
   segment may have consolidated one without a generation bump).  The
   one-entry last-flow memo backs both the pre-probe and the re-probe, so
   consecutive packets of one flow still cost a single lookup.  In-place
   event rewrites keep resolved rule records current by construction. *)
let process_burst_into t packets ~off ~len:n emit =
  match t.cfg.mode with
  | Original ->
      for k = 0 to n - 1 do
        let packet = packets.(off + k) in
        let out = process_original t packet in
        if Sb_obs.Sink.armed t.cfg.obs then instrument t packet out;
        emit k out
      done
  | Speedybox ->
      let cls_arr = ensure_cls_scratch t n in
      let rule_arr = t.rule_scratch in
      let track_live = t.wheel <> None in
      (* Phase one: parse + hash + prefetch for the whole burst. *)
      for k = 0 to n - 1 do
        let cls = Array.unsafe_get cls_arr k in
        Classifier.prepare_into t.classifier packets.(off + k) cls;
        if not cls.Classifier.malformed then begin
          Sb_mat.Global_mat.prefetch t.global cls.Classifier.fid;
          if track_live then Sb_flow.Live_table.prefetch t.live cls.Classifier.fid
        end
      done;
      let memo_fid = ref (-1) and memo_rule = ref None and memo_gen = ref (-1) in
      let resolve fid gen =
        if fid = !memo_fid && gen = !memo_gen then !memo_rule
        else begin
          let r = Sb_mat.Global_mat.find t.global fid in
          (match r with
          | Some _ ->
              memo_fid := fid;
              memo_gen := gen;
              memo_rule := r
          | None -> memo_fid := -1);
          r
        end
      in
      let i = ref 0 in
      while !i < n do
        (* Phase two: conntrack observation up to (and including) the first
           FIN/RST — its execution tears down the flow's conntrack entry,
           so a same-flow packet observed beyond it would read state the
           per-packet order has already erased — plus the pipelined rule
           pre-probe.  Nothing executes during this phase, so the MAT
           generation is constant across the segment. *)
        let gen = Sb_mat.Global_mat.generation t.global in
        let j = ref !i in
        let stop = ref false in
        while (not !stop) && !j < n do
          let cls = Array.unsafe_get cls_arr !j in
          if cls.Classifier.malformed then Array.unsafe_set rule_arr !j None
          else begin
            Classifier.observe_into t.classifier packets.(off + !j) cls;
            if cls.Classifier.final then stop := true;
            let r = resolve cls.Classifier.fid gen in
            Array.unsafe_set rule_arr !j r;
            (* Start the rule record's own line fill for the executor. *)
            match r with Some rule -> Sb_flow.Prefetch.value rule | None -> ()
          end;
          incr j
        done;
        for k = !i to !j - 1 do
          let packet = packets.(off + k) in
          let cls = Array.unsafe_get cls_arr k in
          let out =
            if cls.Classifier.malformed then process_malformed t packet cls
            else begin
              touch t cls packet.Sb_packet.Packet.ingress_cycle;
              let gen_now = Sb_mat.Global_mat.generation t.global in
              let rule =
                match Array.unsafe_get rule_arr k with
                | Some _ as r when gen_now = gen -> r
                | Some _ | None -> resolve cls.Classifier.fid gen_now
              in
              Array.unsafe_set rule_arr k None;
              process_with_rule t packet cls rule
            end
          in
          if Sb_obs.Sink.armed t.cfg.obs then instrument t packet out;
          emit k out
        done;
        i := !j
      done

let process_burst t packets =
  let n = Array.length packets in
  let rev = ref [] in
  process_burst_into t packets ~off:0 ~len:n (fun _ out -> rev := out :: !rev);
  Array.of_list (List.rev !rev)

type run_result = {
  packets : int;
  forwarded : int;
  dropped : int;
  slow_path : int;
  fast_path : int;
  events_fired : int;
  faulted_packets : int;
  latency_us : Sb_sim.Stats.t;
  cycles_per_packet : Sb_sim.Stats.t;
  service : Sb_sim.Stats.t;
  flow_time_us : float Sb_flow.Flow_table.t;
  stage_cycles : (string, Sb_sim.Stats.t) Hashtbl.t;
}

(* Non-TCP/UDP packets have no 5-tuple; their time buckets under this
   sentinel instead of crashing the whole run. *)
let no_flow_fid = -1

let rate_mpps r =
  let mean = Sb_sim.Stats.mean r.service in
  if Float.is_nan mean then nan
  else Sb_sim.Cycles.rate_mpps (int_of_float (Float.round mean))

(* The run accumulator behind [run_trace], exposed so the sharded
   executors fold their outputs through the exact same code: the
   deterministic executor feeds one accumulator in global order, the
   parallel executor feeds one per shard and [absorb]s them into the run
   total — either way the [run_result] is identical by construction to an
   unsharded run over the same outputs. *)
module Acc = struct
  type acc = {
    fid_bits : int;
    mutable count : int;
    mutable forwarded : int;
    mutable dropped : int;
    mutable slow : int;
    mutable fast : int;
    mutable fired : int;
    mutable faulted : int;
    latency_us : Sb_sim.Stats.t;
    cycles_per_packet : Sb_sim.Stats.t;
    service : Sb_sim.Stats.t;
    flow_time_us : float Sb_flow.Flow_table.t;
    stage_cycles : (string, Sb_sim.Stats.t) Hashtbl.t;
  }

  let create ?(fid_bits = Sb_flow.Fid.default_bits) () =
    {
      fid_bits;
      count = 0;
      forwarded = 0;
      dropped = 0;
      slow = 0;
      fast = 0;
      fired = 0;
      faulted = 0;
      latency_us = Sb_sim.Stats.create ();
      cycles_per_packet = Sb_sim.Stats.create ();
      service = Sb_sim.Stats.create ();
      flow_time_us = Sb_flow.Flow_table.create ~initial_size:256 ();
      stage_cycles = Hashtbl.create 16;
    }

  let stage_stats acc label =
    match Hashtbl.find_opt acc.stage_cycles label with
    | Some s -> s
    | None ->
        let s = Sb_sim.Stats.create () in
        Hashtbl.replace acc.stage_cycles label s;
        s

  let consume acc original out =
    acc.count <- acc.count + 1;
    (match out.verdict with
    | Sb_mat.Header_action.Forwarded -> acc.forwarded <- acc.forwarded + 1
    | Sb_mat.Header_action.Dropped -> acc.dropped <- acc.dropped + 1);
    (match out.path with
    | Slow_path -> acc.slow <- acc.slow + 1
    | Fast_path -> acc.fast <- acc.fast + 1);
    acc.fired <- acc.fired + out.events_fired;
    if out.faults > 0 then acc.faulted <- acc.faulted + 1;
    List.iter
      (fun stage ->
        Sb_sim.Stats.add_int
          (stage_stats acc stage.Sb_sim.Cost_profile.label)
          (Sb_sim.Cost_profile.stage_cycles stage))
      out.profile;
    let us = Sb_sim.Cycles.to_microseconds out.latency_cycles in
    Sb_sim.Stats.add acc.latency_us us;
    Sb_sim.Stats.add_int acc.cycles_per_packet out.latency_cycles;
    Sb_sim.Stats.add_int acc.service out.service_cycles;
    (* The flow-time bucket keys by the FID as classified, falling back to
       re-deriving it from the pristine input when the chain dropped the
       packet before classification stamped it. *)
    let key =
      if out.packet.Sb_packet.Packet.fid >= 0 then out.packet.Sb_packet.Packet.fid
      else
        match Sb_flow.Five_tuple.of_packet_opt original with
        | Some tuple -> Sb_flow.Fid.of_tuple ~bits:acc.fid_bits tuple
        | None -> no_flow_fid
    in
    Sb_flow.Flow_table.update acc.flow_time_us key ~default:0. (fun sum -> sum +. us)

  let absorb dst src =
    dst.count <- dst.count + src.count;
    dst.forwarded <- dst.forwarded + src.forwarded;
    dst.dropped <- dst.dropped + src.dropped;
    dst.slow <- dst.slow + src.slow;
    dst.fast <- dst.fast + src.fast;
    dst.fired <- dst.fired + src.fired;
    dst.faulted <- dst.faulted + src.faulted;
    Sb_sim.Stats.absorb dst.latency_us src.latency_us;
    Sb_sim.Stats.absorb dst.cycles_per_packet src.cycles_per_packet;
    Sb_sim.Stats.absorb dst.service src.service;
    Sb_flow.Flow_table.iter
      (fun fid us ->
        Sb_flow.Flow_table.update dst.flow_time_us fid ~default:0. (fun sum -> sum +. us))
      src.flow_time_us;
    Hashtbl.iter
      (fun label stats -> Sb_sim.Stats.absorb (stage_stats dst label) stats)
      src.stage_cycles

  let result acc =
    {
      packets = acc.count;
      forwarded = acc.forwarded;
      dropped = acc.dropped;
      slow_path = acc.slow;
      fast_path = acc.fast;
      events_fired = acc.fired;
      faulted_packets = acc.faulted;
      latency_us = acc.latency_us;
      cycles_per_packet = acc.cycles_per_packet;
      service = acc.service;
      flow_time_us = acc.flow_time_us;
      stage_cycles = acc.stage_cycles;
    }
end

let run_trace ?on_output ?(burst = 1) t packets =
  if burst < 1 then invalid_arg "Runtime.run_trace: burst must be positive";
  let acc = Acc.create ~fid_bits:t.cfg.fid_bits () in
  let consume original out =
    Acc.consume acc original out;
    Option.iter (fun f -> f original out) on_output
  in
  (* The trace's packets are never mutated: each is replayed through a copy.
     Without an [on_output] callback nothing can retain the processed
     packet, so the copies live in reusable scratch buffers; with one, the
     callback may keep [out.packet] (tests do), so copies stay fresh. *)
  (if burst = 1 then
     match on_output with
     | None ->
         let scratch = Sb_packet.Packet.scratch () in
         List.iter
           (fun original ->
             Sb_packet.Packet.copy_into ~src:original ~dst:scratch;
             consume original (process_packet t scratch))
           packets
     | Some _ ->
         List.iter
           (fun original -> consume original (process_packet t (Sb_packet.Packet.copy original)))
           packets
   else begin
     let originals = Array.of_list packets in
     let total = Array.length originals in
     let pool =
       if on_output = None then Array.init (min burst total) (fun _ -> Sb_packet.Packet.scratch ())
       else [||]
     in
     let i = ref 0 in
     while !i < total do
       let n = min burst (total - !i) in
       let seg =
         if on_output = None then begin
           for k = 0 to n - 1 do
             Sb_packet.Packet.copy_into ~src:originals.(!i + k) ~dst:pool.(k)
           done;
           pool
         end
         else Array.init n (fun k -> Sb_packet.Packet.copy originals.(!i + k))
       in
       let base = !i in
       process_burst_into t seg ~off:0 ~len:n (fun k out -> consume originals.(base + k) out);
       i := !i + n
     done
   end);
  (* End-of-run table occupancy (and the sentinel non-flow time bucket),
     as gauges — once per run, not per packet. *)
  (match Sb_obs.Sink.metrics t.cfg.obs with
  | Some m ->
      let g name help v =
        Sb_obs.Metrics.Gauge.set
          (Sb_obs.Metrics.gauge m ~help ~labels:[ ("chain", Chain.name t.chain) ] name)
          v
      in
      g "speedybox_rules_installed" "Consolidated rules in the Global MAT"
        (float_of_int (Sb_mat.Global_mat.flow_count t.global));
      g "speedybox_events_armed" "Event Table conditions currently armed"
        (float_of_int (Sb_mat.Event_table.total_armed (Chain.events t.chain)));
      (match Sb_flow.Flow_table.find acc.Acc.flow_time_us no_flow_fid with
      | Some us ->
          g "speedybox_non_flow_time_us"
            "Processing time spent on packets with no 5-tuple (non-TCP/UDP)" us
      | None -> ());
      (* State-store surface: declared cells per scope, merge rounds run
         (delta-folded, so repeated reports never double-count), armed
         global-state conditions, and the distribution of merged global
         cell values. *)
      let counts = Sb_state.Store.cell_counts t.cfg.state in
      let gs scope help v =
        Sb_obs.Metrics.Gauge.set
          (Sb_obs.Metrics.gauge m ~help
             ~labels:[ ("chain", Chain.name t.chain); ("scope", scope) ]
             "speedybox_state_cells")
          (float_of_int v)
      in
      let cells_help = "Declared state-store cells by scope" in
      gs "per-flow" cells_help counts.Sb_state.Store.per_flow;
      gs "per-shard" cells_help counts.Sb_state.Store.per_shard;
      gs "global" cells_help counts.Sb_state.Store.global;
      Sb_obs.Metrics.Counter.add
        (Sb_obs.Metrics.counter m ~help:"Cross-shard state merge rounds run"
           ~labels:[ ("chain", Chain.name t.chain) ]
           "speedybox_state_merge_rounds_total")
        (Sb_state.Store.merge_rounds_delta t.cfg.state);
      g "speedybox_state_global_events_armed"
        "Armed Event Table conditions reading global-scope state"
        (float_of_int (Sb_mat.Event_table.total_global_armed (Chain.events t.chain)));
      let h_global =
        Sb_obs.Metrics.histogram m ~help:"Merged values of global-scope state cells"
          ~labels:[ ("chain", Chain.name t.chain); ("scope", "global") ]
          "speedybox_state_cell_value"
      in
      List.iter
        (fun (_, _, v) -> Sb_obs.Histogram.observe_int h_global v)
        (Sb_state.Store.merged_values t.cfg.state)
  | None -> ());
  Acc.result acc
