(** The network-function abstraction the framework chains together.

    An NF is its original packet-processing code plus the SpeedyBox
    instrumentation calls.  [process] runs the NF's full logic on a packet
    — parsing, classification, state updates, header rewriting — and
    returns the verdict together with the cycles the work cost under the
    {!Sb_sim.Cycles} model.  The instrumentation records into the context's
    Local MAT only while [ctx.recording] is set. *)

type result = { verdict : Sb_mat.Header_action.verdict; cycles : int }

type t = {
  name : string;
  process : Api.nf_context -> Sb_packet.Packet.t -> result;
  state_digest : unit -> string;
      (** A stable rendering of the NF's internal state (counters, logs,
          mappings), compared by the equivalence checker; [""] for
          stateless NFs. *)
  remove_flow : Sb_flow.Five_tuple.t -> unit;
      (** Drops any per-flow state the NF holds for the given ingress
          tuple.  Called when the runtime's idle timer expires a flow, so
          stateful NFs (conntrack-style counters) stay bounded under flow
          churn.  Best-effort: an NF that keys its state by a tuple some
          upstream NF rewrote will not find the ingress tuple and keeps
          the entry.  Defaults to a no-op. *)
  consolidable : bool;
      (** The paper's applicable-scope boundary (§IV-A3): an NF whose
          per-packet behaviour is not determined per flow — buffering NFs,
          samplers, anything sequence-dependent — must opt out.  A chain
          containing a non-consolidable NF never builds a fast path (every
          packet walks the chain), keeping it correct at the cost of the
          speedup; instrumenting such an NF naively instead produces wrong
          fast-path behaviour, which the scope tests demonstrate. *)
}

val forwarded : int -> result

val dropped : int -> result

val make :
  name:string ->
  ?state_digest:(unit -> string) ->
  ?remove_flow:(Sb_flow.Five_tuple.t -> unit) ->
  ?consolidable:bool ->
  (Api.nf_context -> Sb_packet.Packet.t -> result) ->
  t
(** [consolidable] defaults to [true]; [remove_flow] to a no-op. *)
