type result = { verdict : Sb_mat.Header_action.verdict; cycles : int }

type t = {
  name : string;
  process : Api.nf_context -> Sb_packet.Packet.t -> result;
  state_digest : unit -> string;
  remove_flow : Sb_flow.Five_tuple.t -> unit;
  consolidable : bool;
}

let forwarded cycles = { verdict = Sb_mat.Header_action.Forwarded; cycles }

let dropped cycles = { verdict = Sb_mat.Header_action.Dropped; cycles }

let make ~name ?(state_digest = fun () -> "") ?(remove_flow = fun _ -> ())
    ?(consolidable = true) process =
  { name; process; state_digest; remove_flow; consolidable }
