open Sb_packet

type route = To_classifier | To_nf of int | To_global_mat

type job = {
  packet : Packet.t;
  arrival : int;
  submit_idx : int;  (** submission order, for reordering detection *)
  flow_key : int;
  mutable recording : bool;
  mutable cleanup_after : bool;
  mutable tuple : Sb_flow.Five_tuple.t option;
}

(* Completions sort before enqueues at the same instant (a departure frees
   its ring slot for a simultaneous arrival). *)
type event_kind = Complete of string | Enqueue of (job * route)

let kind_rank = function Complete _ -> 0 | Enqueue _ -> 1

type event = { at : int; seq : int; kind : event_kind }

let compare_events a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.kind) (kind_rank b.kind) in
    if c <> 0 then c else Int.compare a.seq b.seq

type outcome =
  | Next of route
  | Done of Sb_mat.Header_action.verdict
  | Done_after_consolidate of Sb_mat.Header_action.verdict
      (* the walk's last stage for a recording packet: the rule installs at
         completion (when the chain has finished with the packet, §III),
         not at service start *)

type stage = {
  ring : (job * route) Sb_sim.Ring.t;
  pending : (job * route) Queue.t;
      (* burst mode: jobs drained from the ring in one access, awaiting
         service.  Empty when burst = 1 (the job then stays in the ring
         until its completion, as the unbatched model always did). *)
  mutable serving : (job * route) option;  (* burst mode: the in-service job *)
  mutable busy : bool;
  mutable outcome : outcome option;  (** of the in-service job *)
}

type result = {
  forwarded : int;
  dropped_by_chain : int;
  dropped_overflow : int;
  slow_path : int;
  fast_path : int;
  reordered : int;
  sojourn_us : Sb_sim.Stats.t;
  events_fired : int;
  faults : int;
  quarantines : int;
}

let run ?(ring_capacity = 64) ?(burst = 1) ?(policy = Sb_mat.Parallel.Table_one) ?injector
    ?(fault_policy = Sb_fault.Health.default_policy) ?(obs = Sb_obs.Sink.null) chain
    trace =
  if burst < 1 then invalid_arg "Staged_runtime.run: burst must be positive";
  let nfs = Array.of_list (Chain.nfs chain) in
  let mats = Array.of_list (Chain.local_mats chain) in
  let nf_names = Array.map (fun nf -> nf.Nf.name) nfs in
  let classifier = Classifier.create () in
  let global = Sb_mat.Global_mat.create ~policy ~obs () in
  let sup = Sb_fault.Supervisor.create ?injector ~obs fault_policy in
  if Sb_obs.Sink.armed obs then Sb_mat.Event_table.set_obs (Chain.events chain) obs;
  (* Instruments resolved once up front; per-event recording is then field
     updates only (see {!Runtime}). *)
  let ins =
    match Sb_obs.Sink.metrics obs with
    | None -> None
    | Some m ->
        let chain_label = ("chain", Chain.name chain) in
        let verdicts v =
          Sb_obs.Metrics.counter m
            ~help:"Packet verdicts leaving the staged pipeline"
            ~labels:[ chain_label; ("verdict", v) ]
            "speedybox_staged_verdicts_total"
        in
        Some
          ( verdicts "forwarded",
            verdicts "dropped",
            Sb_obs.Metrics.counter m
              ~help:"Packets tail-dropped by a full stage ring"
              ~labels:[ chain_label ] "speedybox_staged_overflow_total",
            Sb_obs.Metrics.histogram m
              ~help:"Arrival-to-departure sojourn in microseconds"
              ~labels:[ chain_label ] "speedybox_staged_sojourn_us" )
  in
  let recording_in_flight : (int, unit) Hashtbl.t = Hashtbl.create 64 in

  let heap = Sb_sim.Min_heap.create ~cmp:compare_events in
  let seq = ref 0 in
  let schedule at kind =
    incr seq;
    Sb_sim.Min_heap.push heap { at; seq = !seq; kind }
  in

  let stage_of_route = function
    | To_classifier -> "Classifier"
    | To_nf i -> nfs.(i).Nf.name
    | To_global_mat -> "GlobalMAT"
  in
  let stages : (string, stage) Hashtbl.t = Hashtbl.create 16 in
  let stage label =
    match Hashtbl.find_opt stages label with
    | Some s -> s
    | None ->
        let s =
          {
            ring = Sb_sim.Ring.create ~capacity:ring_capacity;
            pending = Queue.create ();
            serving = None;
            busy = false;
            outcome = None;
          }
        in
        Hashtbl.replace stages label s;
        s
  in

  let forwarded = ref 0
  and dropped_by_chain = ref 0
  and dropped_overflow = ref 0
  and slow = ref 0
  and fast = ref 0
  and reordered = ref 0
  and fired = ref 0 in
  let sojourn_us = Sb_sim.Stats.create () in

  (* Live submission indices per flow; a departure with a smaller live
     index still present has overtaken it. *)
  let live : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let live_set flow_key =
    match Hashtbl.find_opt live flow_key with
    | Some set -> set
    | None ->
        let set = Hashtbl.create 4 in
        Hashtbl.replace live flow_key set;
        set
  in
  let retire ?(check = false) job =
    let set = live_set job.flow_key in
    if check && Hashtbl.fold (fun idx () acc -> acc || idx < job.submit_idx) set false then
      incr reordered;
    Hashtbl.remove set job.submit_idx
  in

  let stop_recording job =
    if job.recording then begin
      Hashtbl.remove recording_in_flight job.packet.Packet.fid;
      job.recording <- false
    end
  in

  let flow_cleanup job =
    Option.iter
      (fun tuple ->
        Chain.remove_flow chain job.packet.Packet.fid;
        Sb_mat.Global_mat.remove_flow global job.packet.Packet.fid;
        Classifier.forget classifier tuple)
      job.tuple
  in

  (* A Failed NF invalidates every consolidated rule embedding its
     closures; tear the whole fast path down so flows re-record under the
     failure policy. *)
  let flush_fast_state () =
    let fids = Sb_mat.Global_mat.fold (fun fid _ acc -> fid :: acc) global [] in
    List.iter
      (fun fid ->
        Chain.remove_flow chain fid;
        Sb_mat.Global_mat.remove_flow global fid)
      fids
  in
  let note_fault ~nf =
    match Sb_fault.Supervisor.record_fault sup ~nf with
    | Sb_fault.Health.To_failed -> flush_fast_state ()
    | Sb_fault.Health.To_degraded | Sb_fault.Health.No_change -> ()
  in
  Sb_mat.Event_table.set_fault_hook (Chain.events chain) (fun nf _exn ->
      Sb_fault.Supervisor.record_contained sup;
      note_fault ~nf);
  (* Containment inside a stage: the fault is charged, the job's flow state
     quarantined and the packet leaves the chain dropped. *)
  let contain job ~nf ~now cycles =
    note_fault ~nf;
    Sb_fault.Supervisor.record_contained sup;
    Sb_fault.Supervisor.record_faulted_packet sup;
    stop_recording job;
    flow_cleanup job;
    Sb_fault.Supervisor.record_quarantine sup;
    if Sb_obs.Sink.armed obs then begin
      match Sb_obs.Sink.timeline obs with
      | Some tl when job.packet.Packet.fid >= 0 ->
          Sb_obs.Timeline.record tl ~fid:job.packet.Packet.fid
            ~ts_us:(Sb_sim.Cycles.to_microseconds now)
            ~detail:nf Sb_obs.Timeline.Quarantined
      | Some _ | None -> ()
    end;
    job.cleanup_after <- false;
    (cycles + Sb_sim.Cycles.fault_contain, Done Sb_mat.Header_action.Dropped)
  in

  let finish job at verdict =
    (match verdict with
    | Sb_mat.Header_action.Forwarded -> incr forwarded
    | Sb_mat.Header_action.Dropped -> incr dropped_by_chain);
    let us = Sb_sim.Cycles.to_microseconds (at - job.arrival) in
    Sb_sim.Stats.add sojourn_us us;
    (if Sb_obs.Sink.armed obs then
       match ins with
       | Some (c_fwd, c_drop, _, h) ->
           (match verdict with
           | Sb_mat.Header_action.Forwarded -> Sb_obs.Metrics.Counter.incr c_fwd
           | Sb_mat.Header_action.Dropped -> Sb_obs.Metrics.Counter.incr c_drop);
           Sb_obs.Histogram.observe h us
       | None -> ());
    retire ~check:true job;
    if job.cleanup_after then flow_cleanup job
  in

  (* Consolidation cost is deterministic, so the service time can charge
     it up front while the table write itself happens at completion. *)
  let consolidate_cost = List.length (Chain.local_mats chain) * Sb_sim.Cycles.global_consolidate_per_nf in
  let consolidate_at_completion job =
    ignore (Sb_mat.Global_mat.consolidate global job.packet.Packet.fid (Chain.local_mats chain));
    stop_recording job
  in

  (* The actual work a stage performs when it starts serving a job. *)
  let serve job route now =
    match route with
    | To_classifier ->
        let cls = Classifier.classify classifier job.packet in
        if cls.Classifier.malformed then
          (* Rejected at admission: no tuple, no conntrack state, no NF —
             the packet leaves the classifier stage dropped. *)
          (cls.Classifier.cycles, Done Sb_mat.Header_action.Dropped)
        else begin
          job.tuple <- Some cls.Classifier.tuple;
          job.cleanup_after <- cls.Classifier.final;
          if Sb_mat.Global_mat.mem global cls.Classifier.fid then begin
            incr fast;
            (cls.Classifier.cycles, Next To_global_mat)
          end
          else begin
            incr slow;
            (* Only one packet of a flow records at a time: packets arriving
               while the initial packet is still mid-chain walk uninstrumented
               — the consolidation race real deployments have. *)
            if
              cls.Classifier.established
              && Chain.consolidable chain
              && not (Hashtbl.mem recording_in_flight cls.Classifier.fid)
              && ((not (Sb_fault.Supervisor.active sup))
                 || Sb_fault.Supervisor.allow_recording sup nf_names)
            then begin
              Hashtbl.replace recording_in_flight cls.Classifier.fid ();
              job.recording <- true
            end;
            (cls.Classifier.cycles, Next (To_nf 0))
          end
        end
    | To_nf i -> (
        let name = nfs.(i).Nf.name in
        let ctx =
          {
            Api.fid = job.packet.Packet.fid;
            local_mat = mats.(i);
            events = Chain.events chain;
            recording = job.recording;
          }
        in
        let overhead =
          Sb_sim.Cycles.nf_rx_tx
          + if job.recording then Sb_sim.Cycles.local_mat_record else 0
        in
        let finish_walk cycles verdict =
          if job.recording then (cycles + consolidate_cost, Done_after_consolidate verdict)
          else (cycles, Done verdict)
        in
        let gate =
          if Sb_fault.Supervisor.active sup then Sb_fault.Supervisor.gate sup ~nf:name
          else Sb_fault.Supervisor.Run
        in
        match gate with
        | Sb_fault.Supervisor.Bypass_nf ->
            (* Failed NF elided: the packet only transits the stage's port;
               nothing records. *)
            if i + 1 < Array.length nfs then (Sb_sim.Cycles.nf_rx_tx, Next (To_nf (i + 1)))
            else finish_walk Sb_sim.Cycles.nf_rx_tx Sb_mat.Header_action.Forwarded
        | Sb_fault.Supervisor.Drop_packet ->
            (* Failed NF under Drop_flow: record the drop like an ordinary
               verdict so the flow's fast path early-drops. *)
            Api.localmat_add_ha ctx Sb_mat.Header_action.Drop;
            finish_walk
              (Sb_sim.Cycles.nf_rx_tx + Sb_sim.Cycles.ha_drop)
              Sb_mat.Header_action.Dropped
        | Sb_fault.Supervisor.Run -> (
            let injected =
              if Sb_fault.Supervisor.active sup then Sb_fault.Supervisor.draw sup ~nf:name
              else None
            in
            match
              match injected with
              | Some Sb_fault.Injector.Raise -> raise (Sb_fault.Injector.Injected (name, 0))
              | _ -> nfs.(i).Nf.process ctx job.packet
            with
            | exception _exn -> contain job ~nf:name ~now overhead
            | r -> (
                let r =
                  match injected with
                  | Some Sb_fault.Injector.Corrupt_verdict ->
                      note_fault ~nf:name;
                      Sb_fault.Supervisor.record_corrupted sup;
                      Sb_fault.Supervisor.record_faulted_packet sup;
                      {
                        r with
                        Nf.verdict =
                          (match r.Nf.verdict with
                          | Sb_mat.Header_action.Forwarded -> Sb_mat.Header_action.Dropped
                          | Sb_mat.Header_action.Dropped -> Sb_mat.Header_action.Forwarded);
                      }
                  | Some Sb_fault.Injector.Stall ->
                      note_fault ~nf:name;
                      Sb_fault.Supervisor.record_stalled sup;
                      { r with Nf.cycles = r.Nf.cycles + Sb_fault.Supervisor.stall_cycles sup }
                  | _ -> r
                in
                match r.Nf.verdict with
                | Sb_mat.Header_action.Dropped ->
                    (* The walk ends here; a recording walk still
                       consolidates so subsequent packets early-drop. *)
                    finish_walk (r.Nf.cycles + overhead) Sb_mat.Header_action.Dropped
                | Sb_mat.Header_action.Forwarded ->
                    if i + 1 < Array.length nfs then
                      (r.Nf.cycles + overhead, Next (To_nf (i + 1)))
                    else finish_walk (r.Nf.cycles + overhead) Sb_mat.Header_action.Forwarded)))
    | To_global_mat -> (
        match Sb_mat.Global_mat.find global job.packet.Packet.fid with
        | None ->
            (* The rule vanished between classify and service (FIN cleanup
               raced ahead); fall back to the original path. *)
            (Sb_sim.Cycles.fast_path_lookup, Next (To_nf 0))
        | Some rule -> (
            match
              Sb_mat.Global_mat.execute_rule global (Chain.events chain)
                (Chain.local_mats chain) job.packet.Packet.fid rule job.packet
            with
            | exception exn ->
                let nf =
                  match exn with
                  | Sb_fault.Fault.Nf_fault (nf, _, _) -> nf
                  | _ -> "GlobalMAT"
                in
                contain job ~nf ~now Sb_sim.Cycles.fast_path_lookup
            | r ->
                fired := !fired + r.Sb_mat.Global_mat.events_fired;
                ( Sb_sim.Cost_profile.stage_cycles r.Sb_mat.Global_mat.stage
                  + Sb_sim.Cycles.meta_detach,
                  Done r.Sb_mat.Global_mat.verdict )))
  in

  let start_service label state (job, route) ~hop now =
    state.busy <- true;
    let service, outcome = serve job route now in
    let service = service + hop in
    (if Sb_obs.Sink.armed obs then
       (* One span per stage service, on the event clock: ring waits
          show up as gaps between a flow's spans. *)
       match Sb_obs.Sink.tracer obs with
       | Some tr ->
           Sb_obs.Tracer.record tr ~name:label ~cat:"stage"
             ~ts_us:(Sb_sim.Cycles.to_microseconds now)
             ~dur_us:(Sb_sim.Cycles.to_microseconds service)
             ~tid:job.packet.Packet.fid []
       | None -> ());
    state.outcome <- Some outcome;
    schedule (now + service) (Complete label)
  in
  (* Unbatched (burst = 1): the stage serves the ring head in place — the
     job keeps its slot until completion, and the sending stage paid the
     per-job [ring_hop_onvm] when it forwarded.  Burst mode: the stage
     drains up to [burst] jobs from the ring with ONE ring access — the
     hop is charged once, to the first job of the drain — and serves the
     drained batch back to back; forwarding between stages is then free
     (the receiving stage's drain carries the ring-access cost), which is
     exactly OpenNetVM's rte_ring dequeue-burst amortization. *)
  let maybe_start label state now =
    if not state.busy then
      if burst = 1 then begin
        match Sb_sim.Ring.peek state.ring with
        | None -> ()
        | Some entry -> start_service label state entry ~hop:0 now
      end
      else begin
        let hop =
          if Queue.is_empty state.pending then begin
            let rec drain k =
              if k >= burst then ()
              else
                match Sb_sim.Ring.pop state.ring with
                | None -> ()
                | Some entry ->
                    Queue.add entry state.pending;
                    drain (k + 1)
            in
            drain 0;
            if Queue.is_empty state.pending then 0 else Sb_sim.Cycles.ring_hop_onvm
          end
          else 0
        in
        match Queue.take_opt state.pending with
        | None -> ()
        | Some entry ->
            state.serving <- Some entry;
            start_service label state entry ~hop now
      end
  in

  let handle event =
    match event.kind with
    | Enqueue ((job, route) as entry) ->
        let label = stage_of_route route in
        let state = stage label in
        if Sb_sim.Ring.push state.ring entry then maybe_start label state event.at
        else begin
          incr dropped_overflow;
          (if Sb_obs.Sink.armed obs then
             match ins with
             | Some (_, _, c_overflow, _) -> Sb_obs.Metrics.Counter.incr c_overflow
             | None -> ());
          stop_recording job;
          retire job
        end
    | Complete label -> (
        let state = stage label in
        state.busy <- false;
        let served =
          if burst = 1 then Sb_sim.Ring.pop state.ring
          else begin
            let e = state.serving in
            state.serving <- None;
            e
          end
        in
        match (served, state.outcome) with
        | Some (job, _), Some outcome ->
            state.outcome <- None;
            (match outcome with
            | Next next ->
                (* In burst mode the transfer itself is free; the next
                   stage's drain pays the (amortized) ring access. *)
                let hop = if burst = 1 then Sb_sim.Cycles.ring_hop_onvm else 0 in
                schedule (event.at + hop) (Enqueue (job, next))
            | Done verdict -> finish job event.at verdict
            | Done_after_consolidate verdict ->
                consolidate_at_completion job;
                finish job event.at verdict);
            maybe_start label state event.at
        | _ -> assert false (* a completion implies a served head *))
  in

  List.iteri
    (fun submit_idx original ->
      let packet = Packet.copy original in
      let flow_key = Sb_flow.Fid.of_tuple (Sb_flow.Five_tuple.of_packet original) in
      let job =
        {
          packet;
          arrival = packet.Packet.ingress_cycle;
          submit_idx;
          flow_key;
          recording = false;
          cleanup_after = false;
          tuple = None;
        }
      in
      Hashtbl.replace (live_set flow_key) submit_idx ();
      schedule job.arrival (Enqueue (job, To_classifier)))
    trace;
  let rec drain () =
    match Sb_sim.Min_heap.pop_min heap with
    | None -> ()
    | Some event ->
        handle event;
        drain ()
  in
  drain ();
  {
    forwarded = !forwarded;
    dropped_by_chain = !dropped_by_chain;
    dropped_overflow = !dropped_overflow;
    slow_path = !slow;
    fast_path = !fast;
    reordered = !reordered;
    sojourn_us;
    events_fired = !fired;
    faults = Sb_fault.Supervisor.total_faults sup;
    quarantines = Sb_fault.Supervisor.quarantines sup;
  }
