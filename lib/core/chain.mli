(** A service chain: an ordered list of NFs with their Local MATs and the
    shared Event Table. *)

type t

val create : name:string -> Nf.t list -> t
(** Builds a chain, instantiating one Local MAT per NF (in chain order) and
    one Event Table for the chain.
    @raise Invalid_argument on an empty NF list or duplicate NF names
    (event updates address Local MATs by NF name). *)

val name : t -> string

val nfs : t -> Nf.t list

val length : t -> int

val local_mats : t -> Sb_mat.Local_mat.t list
(** Same order as [nfs]. *)

val local_mat_for : t -> Nf.t -> Sb_mat.Local_mat.t

val events : t -> Sb_mat.Event_table.t

val consolidable : t -> bool
(** False when any NF opted out of consolidation (§IV-A3); the runtime
    then keeps every packet on the original path. *)

val state_digest : t -> string
(** Concatenated per-NF state digests, for equivalence comparison. *)

val remove_flow : ?tuple:Sb_flow.Five_tuple.t -> t -> Sb_flow.Fid.t -> unit
(** Deletes the flow's record from every Local MAT and the Event Table.
    With [tuple] (passed only by the idle-expiry path) each NF's
    {!Nf.t.remove_flow} hook also runs, so conntrack-style per-flow NF
    state is reclaimed when flows go idle. *)
