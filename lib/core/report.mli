(** Human-readable reports over runtime results: the run summary the CLI
    prints, and a chain-state inspection for debugging deployments. *)

val run_summary :
  ?label:string -> Runtime.t -> Runtime.run_result -> string
(** A multi-line summary: packet/verdict/path counters, latency
    percentiles, model throughput, Global MAT occupancy and sharing, flow
    processing times (the sentinel non-TCP/UDP bucket appears as a named
    "non-flow" line, never as a raw FID), and eviction/expiry counters
    when those features are active.  When the chain declared state-store
    cells, a "global state" section lists every global cell's merged
    value, sorted by name — byte-identical to the section a sharded run
    over the same traffic prints. *)

val sharded_run_summary :
  ?label:string -> Runtime.t list -> Runtime.run_result -> string
(** {!run_summary} for a sharded run: the same result-derived lines, with
    table occupancy/evictions/expiry summed across the shard runtimes, the
    machine's available core count (what bounds the Domain-parallel
    executor), and any active shard's fault summary prefixed with its
    shard index. *)

(** One shard's end-of-run figures, as the sharded runtime reports them
    (Report sits below the shard library, so it takes plain rows). *)
type shard_row = {
  shard : int;
  packets : int;  (** packets steered to this shard *)
  flows : int;  (** flows the shard's directory owned at end of run *)
  rules : int;  (** consolidated rules installed at end of run *)
  control_msgs : int;  (** broadcast control messages absorbed *)
  migrated_in : int;
  migrated_out : int;
  state_entries : int;
      (** live per-flow state-store entries held by this shard's replica
          of the shared store ([0] when no store is shared) *)
}

val shard_summary : shard_row list -> string
(** A per-shard table plus a peak/mean balance figure (for >1 shard). *)

val chain_state : Chain.t -> string
(** Per-NF state digests, indented under the chain name. *)

val flow_rules : Runtime.t -> limit:int -> string
(** The first [limit] consolidated rules (FID and fast-path structure),
    for inspecting what the Global MAT actually installed. *)

val stage_breakdown : Runtime.run_result -> string
(** Where the cycles went: per-stage packet counts, mean cycles and share
    of the total, sorted by total cycles descending. *)
