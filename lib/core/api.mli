(** The SpeedyBox instrumentation APIs (Fig. 2 of the paper).

    An NF developer adds a handful of calls to these functions to an
    existing NF — the paper's Snort integration is 27 lines — and the NF
    becomes consolidation-ready.  The calls only {e record} behaviour; they
    never change the NF's own processing, so an instrumented NF behaves
    identically when the framework runs in [Original] mode (where the
    context has [recording = false] and every call is a no-op). *)

type nf_context = {
  fid : Sb_flow.Fid.t;  (** the classifier-assigned FID of the packet *)
  local_mat : Sb_mat.Local_mat.t;  (** this NF's Local MAT *)
  events : Sb_mat.Event_table.t;  (** the chain's Event Table *)
  recording : bool;
      (** true only while the flow's initial packet traverses the chain
          under SpeedyBox *)
}

val nf_extract_fid : Sb_packet.Packet.t -> Sb_flow.Fid.t
(** [nf_extract_fid p] reads the FID metadata the Packet Classifier
    attached.  @raise Invalid_argument when the packet carries none. *)

val localmat_add_ha : nf_context -> Sb_mat.Header_action.t -> unit
(** Records a header action for the context's flow, in execution order. *)

val localmat_add_sf : nf_context -> Sb_mat.State_function.t -> unit
(** Records a state-function handler for the context's flow. *)

val register_event :
  nf_context ->
  ?one_shot:bool ->
  ?global_state:bool ->
  condition:(unit -> bool) ->
  ?new_actions:(unit -> Sb_mat.Header_action.t list) ->
  ?new_state_functions:(unit -> Sb_mat.State_function.t list) ->
  ?update_fn:(unit -> unit) ->
  unit ->
  unit
(** Registers a runtime event for the flow: when [condition] becomes true
    the NF's recorded header actions (and, when given, state functions) are
    replaced with the freshly computed lists and [update_fn] runs, after
    which the Global MAT re-consolidates.  Pass [~global_state:true] when
    the condition reads global-scope state-store cells (so it can become
    true through another shard's contribution at a merge point). *)
