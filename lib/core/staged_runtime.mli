(** The staged OpenNetVM executor: the chain as a real pipeline.

    {!Runtime} processes packets one at a time and prices the platform
    analytically; this executor instead runs the classifier and every NF
    as pipeline stages connected by finite rings under a discrete-event
    heap.  All processing is the real thing — NF closures run when their
    stage serves the packet, recording and consolidation happen exactly
    where they would on the wire — so the execution exhibits effects the
    closed-form model cannot:

    - {b queueing}: sojourn times include waiting in rings, and bursts
      overflow them (tail drops);
    - {b consolidation races}: packets of a flow that arrive while its
      initial packet is still mid-chain take the slow path too (the rule
      does not exist yet), and only one of them records;
    - {b reordering}: once the rule installs, a later packet can take the
      one-stage fast path and depart before earlier packets of the same
      flow still queued in NF stages — measured and reported.

    Packets must carry arrival times ([ingress_cycle]; see
    {!Sb_trace.Workload.with_poisson_times}). *)

type result = {
  forwarded : int;
  dropped_by_chain : int;  (** NF verdicts *)
  dropped_overflow : int;  (** ring tail drops *)
  slow_path : int;
  fast_path : int;
  reordered : int;
      (** departures that overtook an earlier-arrived packet of the same
          flow *)
  sojourn_us : Sb_sim.Stats.t;  (** arrival to departure, completed packets *)
  events_fired : int;
  faults : int;  (** contained + corrupted + stalled faults over the run *)
  quarantines : int;  (** flows whose consolidated state a fault tore down *)
}

val run :
  ?ring_capacity:int ->
  ?burst:int ->
  ?policy:Sb_mat.Parallel.policy ->
  ?injector:Sb_fault.Injector.t ->
  ?fault_policy:Sb_fault.Health.policy ->
  ?obs:Sb_obs.Sink.t ->
  Chain.t ->
  Sb_packet.Packet.t list ->
  result
(** [run chain trace] — the trace must be in non-decreasing arrival order.
    Default ring capacity: 64 slots per stage.

    [burst] (default 1) sets the ring dequeue burst: with [burst > 1] a
    stage drains up to that many jobs from its ring in one access,
    charging [ring_hop_onvm] once per drain (to the drain's first job)
    instead of once per forwarded packet — OpenNetVM's dequeue-burst
    amortization.  Drained jobs also free their ring slots immediately,
    so bursty arrivals overflow less.  [burst = 1] is the original
    job-at-a-time model, bit-for-bit.
    @raise Invalid_argument when [burst < 1].

    [obs] (default {!Sb_obs.Sink.null}): when armed, every stage service
    records one tracer span on the event clock (ring waits appear as gaps
    between a flow's spans), departures feed verdict counters and a
    sojourn histogram ([speedybox_staged_*]), ring overflows are counted,
    and fault quarantines land on the flow timeline.

    Faults are contained per stage: a raise from an NF's service (injected
    by [injector] or organic, including state functions and event updates
    on the Global MAT stage) drops the packet, quarantines the flow's
    consolidated state and advances the NF's health under [fault_policy]. *)
