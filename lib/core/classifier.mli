(** The Packet Classifier (§VI-B).

    For every arriving packet the classifier hashes the 5-tuple to a
    20-bit FID (configurable width) and attaches it to the packet as
    metadata that stays consistent along the chain even when NFs rewrite
    the tuple.  It also tracks connection state: the paper defines a flow's
    {e initial packet} as the first packet after the connection is
    established (post 3-way handshake), and treats FIN/RST as the final
    packet that triggers rule cleanup. *)

type classification = {
  mutable fid : Sb_flow.Fid.t;
  mutable tuple : Sb_flow.Five_tuple.t;
      (** the tuple as seen at chain ingress, before any NF rewrites it *)
  mutable thash : int;
      (** [Five_tuple.hash tuple], computed once in {!prepare_into} and
          shared by the FID fold and every conntrack operation *)
  mutable established : bool;
      (** the flow is past its handshake — recording may begin when no
          consolidated rule exists yet *)
  mutable final : bool;
      (** FIN or RST: delete the flow's rules after processing *)
  mutable malformed : bool;
      (** the packet failed admission — no 5-tuple (non-TCP/UDP or a
          corrupted protocol byte), or stale checksums under
          [verify_checksums] — and must be rejected before reaching any
          NF; [fid] is [-1] and conntrack was not touched *)
  mutable cycles : int;  (** classifier work for this packet *)
}
(** Fields are mutable so the burst path can classify into reusable
    scratch records ({!classify_into}); {!classify} still returns a fresh
    record per call. *)

type t

val create : ?fid_bits:int -> ?verify_checksums:bool -> unit -> t
(** [fid_bits] defaults to {!Sb_flow.Fid.default_bits} (20, as the paper).
    [verify_checksums] (default [false]) additionally validates IPv4 and
    L4 checksums at admission, marking stale packets [malformed] — the
    defense against in-flight corruption, off by default because clean
    traces always verify and the check costs a payload scan per packet. *)

val fid_bits : t -> int

val rejected : t -> int
(** Packets marked [malformed] by this classifier so far. *)

val classify : t -> Sb_packet.Packet.t -> classification
(** Assigns the FID (writing it into the packet metadata) and advances the
    flow's connection state. *)

val scratch : unit -> classification
(** A blank classification for use with {!classify_into}. *)

val classify_into : t -> Sb_packet.Packet.t -> classification -> unit
(** Like {!classify} but fills a caller-owned scratch record in place —
    the burst path's allocation-free variant.  Equivalent to
    {!prepare_into} followed (when not malformed) by {!observe_into}. *)

val prepare_into : t -> Sb_packet.Packet.t -> classification -> unit
(** Phase one of classification, a pure function of the packet bytes:
    admission checks, tuple extraction, the single per-packet FNV hash,
    the FID (written into the packet metadata) — plus a prefetch hint for
    the conntrack slot {!observe_into} will probe.  Leaves [established]/
    [final] false; conntrack is not touched.  The burst prescan runs this
    over the whole burst first, so every later probe lands on a warming
    cache line. *)

val observe_into : t -> Sb_packet.Packet.t -> classification -> unit
(** Phase two: advances the flow's connection state (one conntrack
    observation reusing [thash]) and fills [established]/[final].  Must
    only run on a classification {!prepare_into} left non-malformed. *)

val export_flow : t -> Sb_flow.Five_tuple.t -> Sb_flow.Conntrack.state option
(** The connection state tracked under this (direction-sensitive) tuple,
    for a flow-migration handoff.  Conntrack keys each direction of a
    connection separately, so a full handoff exports both the tuple and
    its reverse. *)

val adopt_flow : t -> Sb_flow.Five_tuple.t -> Sb_flow.Conntrack.state -> unit
(** Installs connection state exported from another classifier
    ({!export_flow}) — the receiving half of a flow-migration handoff. *)

val forget : t -> Sb_flow.Five_tuple.t -> unit
(** Drops connection state for the flow with this ingress tuple (rule
    cleanup after the final packet). *)

val active_flows : t -> int
