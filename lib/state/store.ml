module Tuple_map = Sb_flow.Tuple_map

type scope = Per_flow | Per_shard | Global

let scope_to_string = function
  | Per_flow -> "per-flow"
  | Per_shard -> "per-shard"
  | Global -> "global"

(* The shared half of a global cell: one published contribution per
   shard.  Slot [s] is written by shard [s] only (Atomic.set of an
   immutable snap, no CAS), and read by every other shard's refresh —
   single-writer atomics, touched only at flush/merge points, never on
   the per-packet path. *)
type gcell = { slots : Kind.snap Atomic.t array }

type handle = {
  hkind : Kind.t;
  hshard : int;
  cell : gcell option;  (* [None] for Per_shard scope: nothing to publish *)
  (* This shard's live contribution: plain mutable fields, the only
     state the hot path touches. *)
  mutable lp : int;
  mutable ln : int;
  mutable lstamp : int;
  mutable lv : int;
  mutable lset : bool;
  (* Cached [combine] of the OTHER shards' published slots, refreshed at
     flush/merge points; [read_merged] is then pure field arithmetic. *)
  mutable others : Kind.snap;
}

type entry = { mutable x : int; mutable y : int; mutable set : bool }

type flow_cell = { entries : entry Tuple_map.t }

type decl = { dscope : scope; dkind : Kind.t option; dcell : gcell option }

(* The pieces every replica shares with the store, split out so replicas
   need no back-pointer to the store record itself. *)
type core = {
  shards : int;
  schema : (string, decl) Hashtbl.t;
  mutable globals : int;  (* Global-scope cells declared, executor fast guard *)
  mutable rounds : int;
  mutable rounds_reported : int;  (* high-water already folded into obs *)
}

type replica = {
  shard : int;
  core : core;
  handles : (string, handle) Hashtbl.t;
  flow_cells : (string, flow_cell) Hashtbl.t;
}

type t = { core : core; replicas : replica array }

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Store.create: shards must be positive";
  let core =
    { shards; schema = Hashtbl.create 16; globals = 0; rounds = 0; rounds_reported = 0 }
  in
  {
    core;
    replicas =
      Array.init shards (fun shard ->
          { shard; core; handles = Hashtbl.create 16; flow_cells = Hashtbl.create 8 });
  }

let shards t = t.core.shards

let replica t i =
  if i < 0 || i >= t.core.shards then
    invalid_arg
      (Printf.sprintf "Store.replica: shard %d out of range (store has %d)" i t.core.shards);
  t.replicas.(i)

let solo () = replica (create ~shards:1 ()) 0

let replica_shard r = r.shard

(* ---- declarations ---- *)

let mismatch name what declared redeclared =
  invalid_arg
    (Printf.sprintf "Store.declare: cell %S already declared with %s %s, redeclared with %s"
       name what declared redeclared)

let find_decl (r : replica) ~name ~scope ~kind =
  let t = r.core in
  match Hashtbl.find_opt t.schema name with
  | Some d ->
      if d.dscope <> scope then
        mismatch name "scope" (scope_to_string d.dscope) (scope_to_string scope);
      (match (d.dkind, kind) with
      | Some k, Some k' when k <> k' -> mismatch name "kind" (Kind.to_string k) (Kind.to_string k')
      | _ -> ());
      d
  | None ->
      let d =
        {
          dscope = scope;
          dkind = kind;
          dcell =
            (if scope = Global then
               Some { slots = Array.init t.shards (fun _ -> Atomic.make Kind.identity) }
             else None);
        }
      in
      Hashtbl.replace t.schema name d;
      if scope = Global then t.globals <- t.globals + 1;
      d

let declare_cell r ~name ~scope kind =
  let d = find_decl r ~name ~scope ~kind:(Some kind) in
  match Hashtbl.find_opt r.handles name with
  | Some h -> h
  | None ->
      let h =
        {
          hkind = kind;
          hshard = r.shard;
          cell = d.dcell;
          lp = 0;
          ln = 0;
          lstamp = 0;
          lv = 0;
          lset = false;
          others = Kind.identity;
        }
      in
      Hashtbl.replace r.handles name h;
      h

let global r ~name kind = declare_cell r ~name ~scope:Global kind

let per_shard r ~name kind = declare_cell r ~name ~scope:Per_shard kind

let flow r ~name =
  ignore (find_decl r ~name ~scope:Per_flow ~kind:None);
  match Hashtbl.find_opt r.flow_cells name with
  | Some fc -> fc
  | None ->
      let fc = { entries = Tuple_map.create 256 } in
      Hashtbl.replace r.flow_cells name fc;
      fc

(* ---- hot-path operations (plain field updates only) ---- *)

let add h k = h.lp <- h.lp + k

let sub h k = h.ln <- h.ln + k

let write h ~stamp v =
  if (not h.lset) || stamp >= h.lstamp then begin
    h.lstamp <- stamp;
    h.lv <- v;
    h.lset <- true
  end

let observe h v =
  match h.hkind with
  | Kind.Min_register -> if (not h.lset) || v < h.lv then begin h.lv <- v; h.lset <- true end
  | Kind.Max_register -> if (not h.lset) || v > h.lv then begin h.lv <- v; h.lset <- true end
  | Kind.G_counter | Kind.Pn_counter | Kind.Lww_register ->
      invalid_arg "Store.observe: min/max register required"

let live_snap h =
  Kind.normalize h.hkind
    { Kind.p = h.lp; n = h.ln; stamp = h.lstamp; shard = h.hshard; v = h.lv; set = h.lset }

let read_merged h = Kind.value h.hkind (Kind.combine h.hkind (live_snap h) h.others)

let read_local h = Kind.value h.hkind (live_snap h)

(* ---- per-flow operations ---- *)

let fresh_entry () = { x = 0; y = 0; set = false }

let flow_entry fc tuple = Tuple_map.find_or_add fc.entries tuple ~default:fresh_entry

let flow_find fc tuple = Tuple_map.find_opt fc.entries tuple

let flow_remove fc tuple = Tuple_map.remove fc.entries tuple

let flow_replace fc tuple e = Tuple_map.replace fc.entries tuple e

let flow_fold f fc acc = Tuple_map.fold f fc.entries acc

let flow_count fc = Tuple_map.length fc.entries

(* ---- merge machinery ---- *)

let publish r =
  Hashtbl.iter
    (fun _ h ->
      match h.cell with
      | Some c -> Atomic.set c.slots.(h.hshard) (live_snap h)
      | None -> ())
    r.handles

let refresh r =
  Hashtbl.iter
    (fun _ h ->
      match h.cell with
      | Some c ->
          let acc = ref Kind.identity in
          Array.iteri
            (fun s slot ->
              if s <> h.hshard then acc := Kind.combine h.hkind !acc (Atomic.get slot))
            c.slots;
          h.others <- !acc
      | None -> ())
    r.handles

let flush r = publish r; refresh r

let merge_round t =
  Array.iter publish t.replicas;
  Array.iter refresh t.replicas;
  t.core.rounds <- t.core.rounds + 1

let merge_rounds t = t.core.rounds

let merge_rounds_delta t =
  let d = t.core.rounds - t.core.rounds_reported in
  t.core.rounds_reported <- t.core.rounds;
  d

let has_global t = t.core.globals > 0

(* ---- whole-store readings (single-threaded, post-run) ---- *)

let merged_snap t name d =
  match (d.dkind, d.dcell) with
  | Some kind, Some cell ->
      let acc = ref Kind.identity in
      for s = 0 to t.core.shards - 1 do
        (* Join the published slot with the replica's live contribution:
           counters are monotone and registers ordered, so the join picks
           whichever is fresher — no flush required before reading, and a
           solo store (which never publishes) reads exactly. *)
        let slot = Atomic.get cell.slots.(s) in
        let live =
          match Hashtbl.find_opt t.replicas.(s).handles name with
          | Some h -> live_snap h
          | None -> Kind.identity
        in
        acc := Kind.combine kind !acc (Kind.join kind slot live)
      done;
      Some (kind, !acc)
  | _ -> None

let merged_values t =
  Hashtbl.fold
    (fun name d acc ->
      if d.dscope = Global then
        match merged_snap t name d with
        | Some (kind, snap) -> (name, kind, Kind.value kind snap) :: acc
        | None -> acc
      else acc)
    t.core.schema []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let per_shard_values (r : replica) =
  Hashtbl.fold
    (fun name h acc ->
      match Hashtbl.find_opt r.core.schema name with
      | Some { dscope = Per_shard; _ } -> (name, h.hkind, read_local h) :: acc
      | _ -> acc)
    r.handles []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

type scope_counts = { per_flow : int; per_shard : int; global : int }

let cell_counts t =
  Hashtbl.fold
    (fun _ d acc ->
      match d.dscope with
      | Per_flow -> { acc with per_flow = acc.per_flow + 1 }
      | Per_shard -> { acc with per_shard = acc.per_shard + 1 }
      | Global -> { acc with global = acc.global + 1 })
    t.core.schema
    { per_flow = 0; per_shard = 0; global = 0 }

let cell_count t = Hashtbl.length t.core.schema

let flow_entries r =
  Hashtbl.fold (fun _ fc acc -> acc + Tuple_map.length fc.entries) r.flow_cells 0

(* ---- scope-aware state migration ---- *)

let transplant t ~src ~dest tuple =
  if src < 0 || src >= t.core.shards || dest < 0 || dest >= t.core.shards then
    invalid_arg "Store.transplant: shard out of range";
  if src = dest then 0
  else begin
    (* Deterministic cell order, so a migration's effect on iteration-
       order-sensitive digests is reproducible. *)
    let names =
      Hashtbl.fold
        (fun name d acc -> if d.dscope = Per_flow then name :: acc else acc)
        t.core.schema []
      |> List.sort String.compare
    in
    List.fold_left
      (fun moved name ->
        match
          ( Hashtbl.find_opt t.replicas.(src).flow_cells name,
            Hashtbl.find_opt t.replicas.(dest).flow_cells name )
        with
        | Some sfc, Some dfc -> (
            match Tuple_map.find_opt sfc.entries tuple with
            | Some e ->
                Tuple_map.remove sfc.entries tuple;
                Tuple_map.replace dfc.entries tuple e;
                moved + 1
            | None -> moved)
        | _ -> moved)
      0 names
  end
