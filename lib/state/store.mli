(** The scoped, mergeable state store (ROADMAP item 2, after TransNFV and
    the SFC state-management vision paper): NFs declare their state cells
    up front — name, scope, merge semantics — instead of hiding cross-flow
    state in instance fields where sharding silently partitions it.

    Three scopes:

    - {b Per_flow}: keyed by 5-tuple, owned by whichever shard owns the
      flow; migration moves the entry ({!transplant}).
    - {b Per_shard}: one private value per shard, never merged (sharding
      diagnostics, shard-local caches).
    - {b Global}: one logical value observed by every shard, kept as
      per-shard CRDT replicas ({!Kind}) that merge deterministically at
      burst boundaries.  The per-packet path touches only plain fields of
      this shard's replica — no lock, no atomic, no fence.

    Concurrency contract: each replica is owned by its shard's domain.
    {!flush} is the only operation a worker domain may call concurrently
    with other shards (it publishes this shard's contribution with a
    single-writer [Atomic.set] per cell and refreshes the cached view of
    the others).  {!merge_round}, {!merged_values}, {!transplant} and the
    counting accessors are single-threaded operations for the
    deterministic executor and post-join code.

    Read semantics of {!read_merged}: own live contribution combined with
    the other shards' contributions as of the last flush/merge point.
    Under the deterministic executor (which runs a merge round at every
    shard switch) and in a solo store this is exact at every packet;
    under the Domain-parallel executor it is a locally-consistent bound
    that converges at batch boundaries and is exact after the post-join
    merge. *)

type scope = Per_flow | Per_shard | Global

val scope_to_string : scope -> string

type t

type replica
(** One shard's view of the store: its private handles, flow cells and
    live contributions. *)

val create : ?shards:int -> unit -> t
(** A store sized for [shards] replicas (default 1).
    @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val replica : t -> int -> replica
(** @raise Invalid_argument when the index is outside [0, shards). *)

val solo : unit -> replica
(** A fresh single-shard store's only replica — the default an NF uses
    when no shared store is supplied, making the store-backed hot path
    semantically identical to the old instance-local fields. *)

val replica_shard : replica -> int

(** {1 Declarations}

    Declaring is idempotent per replica (the same handle comes back) and
    checked across replicas: redeclaring a name with a different scope or
    kind raises [Invalid_argument].  All declarations must happen at
    chain-build time, before packets flow. *)

type handle
(** A replica-local handle on a [Global] or [Per_shard] cell. *)

val global : replica -> name:string -> Kind.t -> handle

val per_shard : replica -> name:string -> Kind.t -> handle

type entry = { mutable x : int; mutable y : int; mutable set : bool }
(** A per-flow cell entry: two integer lanes and a flag, covering the
    ported NFs (Monitor: packets/bytes; DoS guard: count/last-seq/
    has-last; Maglev: backend index) with one table probe per packet.
    The NF captures the entry in its recorded state-function closure, so
    the fast path cost matches the old per-NF cell records. *)

type flow_cell

val flow : replica -> name:string -> flow_cell

(** {1 Hot-path operations} — plain field updates, no allocation. *)

val add : handle -> int -> unit
(** Counter increment (G or PN). *)

val sub : handle -> int -> unit
(** PN-counter decrement. *)

val write : handle -> stamp:int -> int -> unit
(** LWW write.  Stamps must be monotone per replica; cross-shard ties
    break on shard index. *)

val observe : handle -> int -> unit
(** Min/max register fold.
    @raise Invalid_argument on counter or LWW handles. *)

val read_merged : handle -> int
(** Own live contribution combined with the cached view of the other
    shards (see the module header for exactness). *)

val read_local : handle -> int
(** This shard's contribution alone. *)

val flow_entry : flow_cell -> Sb_flow.Five_tuple.t -> entry
(** Find-or-create, zeroed ([set = false]). *)

val flow_find : flow_cell -> Sb_flow.Five_tuple.t -> entry option

val flow_remove : flow_cell -> Sb_flow.Five_tuple.t -> unit

val flow_replace : flow_cell -> Sb_flow.Five_tuple.t -> entry -> unit

val flow_fold : (Sb_flow.Five_tuple.t -> entry -> 'a -> 'a) -> flow_cell -> 'a -> 'a

val flow_count : flow_cell -> int

(** {1 Merge points} *)

val flush : replica -> unit
(** Publish this shard's global contributions (one single-writer atomic
    store per cell) and refresh the cached combine of the other shards'
    published slots.  The parallel executor calls this at batch
    boundaries; safe to run concurrently with other shards' flushes. *)

val merge_round : t -> unit
(** Publish then refresh every replica — the deterministic executor's
    stretch-boundary merge and the parallel executor's post-join
    convergence.  Single-threaded callers only. *)

val merge_rounds : t -> int

val merge_rounds_delta : t -> int
(** Rounds since the last call — for folding into a metrics counter
    idempotently across repeated end-of-run reports. *)

val has_global : t -> bool
(** Cheap guard the executors use to skip merge machinery entirely when
    no global cell was ever declared. *)

(** {1 Whole-store readings} (single-threaded, post-run) *)

val merged_values : t -> (string * Kind.t * int) list
(** Every global cell's merged value, sorted by name — the [Report]
    "global state" section.  Exact without a prior merge round: each
    shard's published slot is joined with its live contribution. *)

val per_shard_values : replica -> (string * Kind.t * int) list

type scope_counts = { per_flow : int; per_shard : int; global : int }

val cell_counts : t -> scope_counts
(** Declared cells per scope. *)

val cell_count : t -> int

val flow_entries : replica -> int
(** Live per-flow entries on this replica, over all per-flow cells. *)

val transplant : t -> src:int -> dest:int -> Sb_flow.Five_tuple.t -> int
(** Move the flow's entries in every per-flow cell from [src]'s replica
    to [dest]'s (deterministic cell order); returns entries moved.
    Called by flow migration alongside conntrack export.
    @raise Invalid_argument on out-of-range shards. *)
