(** The merge algebra behind global-scope state cells.

    A global cell is a state-based CRDT: its full state is one
    {!snap} (contribution) per shard, each written only by its owning
    shard.  Reconciling two {e versions} of the same shard's
    contribution uses {!join} — a semilattice operation (associative,
    commutative, idempotent), so replays and re-merges are harmless.
    Producing the cell's merged value aggregates contributions {e
    across} shards with {!combine} — associative and commutative (so the
    result is independent of shard order), but summing for the counter
    kinds, hence deliberately not idempotent: each shard contributes
    once, by construction, because each shard owns exactly one slot.

    The qcheck suite (test/test_state.ml) checks these laws over random
    snaps for every kind. *)

type t =
  | G_counter  (** grow-only counter: adds only, value = sum of shard totals *)
  | Pn_counter  (** increment/decrement counter: two G-counters, value = P - N *)
  | Lww_register
      (** last-writer-wins register: the (stamp, shard)-greatest write wins,
          shard index breaking same-stamp ties deterministically *)
  | Min_register  (** monotone minimum of all observed values *)
  | Max_register  (** monotone maximum of all observed values *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** One shard's contribution, as an immutable snapshot.  Counters use
    [p]/[n] (absolute totals, monotone); registers use [v]/[set] plus,
    for LWW, the [stamp]/[shard] order.  Unused fields are zeroed by
    {!normalize} so structural equality coincides with semantic
    equality. *)
type snap = { p : int; n : int; stamp : int; shard : int; v : int; set : bool }

val identity : snap
(** Neutral for both {!join} and {!combine}, every kind. *)

val normalize : t -> snap -> snap
(** Canonical form under [kind]: fields the kind ignores are zeroed. *)

val join : t -> snap -> snap -> snap
(** Same-shard reconcile (version semilattice): counters take the
    pointwise max (totals are monotone, so newer beats older), registers
    their respective order.  ACI on normalized snaps. *)

val combine : t -> snap -> snap -> snap
(** Cross-shard aggregate: counters add, registers coincide with
    {!join}.  Associative and commutative; identity {!identity}. *)

val value : t -> snap -> int
(** The observable value of an aggregated snap ([0] for a register
    nothing has written). *)
