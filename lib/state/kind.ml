type t = G_counter | Pn_counter | Lww_register | Min_register | Max_register

let to_string = function
  | G_counter -> "g-counter"
  | Pn_counter -> "pn-counter"
  | Lww_register -> "lww"
  | Min_register -> "min"
  | Max_register -> "max"

let pp fmt k = Format.pp_print_string fmt (to_string k)

type snap = { p : int; n : int; stamp : int; shard : int; v : int; set : bool }

let identity = { p = 0; n = 0; stamp = 0; shard = -1; v = 0; set = false }

(* Canonical form: only the fields the kind reads survive, so [join] and
   [combine] are idempotent and commutative on the records themselves
   (two snaps the kind cannot distinguish compare structurally equal). *)
let normalize kind s =
  match kind with
  | G_counter -> if s.p = 0 then identity else { identity with p = s.p }
  | Pn_counter ->
      if s.p = 0 && s.n = 0 then identity else { identity with p = s.p; n = s.n }
  | Lww_register ->
      if s.set then { identity with stamp = s.stamp; shard = s.shard; v = s.v; set = true }
      else identity
  | Min_register | Max_register ->
      if s.set then { identity with v = s.v; set = true } else identity

(* The LWW total order: stamp, then shard index, then value.  Shard
   breaks same-stamp ties deterministically; the value component only
   matters for ill-formed inputs (two writes with one stamp from one
   shard), keeping the order total — and the algebra ACI — on arbitrary
   snaps, which the qcheck suite exploits. *)
let lww_le a b =
  a.stamp < b.stamp
  || (a.stamp = b.stamp && (a.shard < b.shard || (a.shard = b.shard && a.v <= b.v)))

let join kind a b =
  match kind with
  | G_counter -> { identity with p = max a.p b.p }
  | Pn_counter -> { identity with p = max a.p b.p; n = max a.n b.n }
  | Lww_register -> (
      match (a.set, b.set) with
      | false, _ -> normalize kind b
      | _, false -> normalize kind a
      | true, true -> if lww_le a b then normalize kind b else normalize kind a)
  | Min_register -> (
      match (a.set, b.set) with
      | false, _ -> normalize kind b
      | _, false -> normalize kind a
      | true, true -> { identity with v = min a.v b.v; set = true })
  | Max_register -> (
      match (a.set, b.set) with
      | false, _ -> normalize kind b
      | _, false -> normalize kind a
      | true, true -> { identity with v = max a.v b.v; set = true })

let combine kind a b =
  match kind with
  | G_counter -> { identity with p = a.p + b.p }
  | Pn_counter -> { identity with p = a.p + b.p; n = a.n + b.n }
  | Lww_register | Min_register | Max_register -> join kind a b

let value kind s =
  match kind with
  | G_counter -> s.p
  | Pn_counter -> s.p - s.n
  | Lww_register | Min_register | Max_register -> if s.set then s.v else 0
