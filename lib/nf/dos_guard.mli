(** The DoS-prevention NF of the paper's Event Table walkthrough (Fig. 3):
    counts packets (or TCP SYNs) per flow and, once a flow's counter
    crosses the threshold, turns the flow's action from forward into drop.

    Under SpeedyBox the counter increment is a payload-IGNORE state
    function and the cut-off is a one-shot event — condition
    [count >= threshold], update [drop] — so a flow's fast path flips to
    early drop the moment it exceeds its budget, exactly the top-right
    transition of Fig. 3. *)

(** What the per-flow counter counts. *)
type count_mode = All_packets | Syn_only

type t

val create :
  ?name:string -> ?mode:count_mode -> ?global_budget:int -> threshold:int -> unit -> t
(** [global_budget] arms a chain-wide cut-off on top of the per-flow
    [threshold]: once the instance has counted that many packets {e in
    total} (across all flows), every flow's armed event fires and further
    packets drop — the paper's "DoS budget" reading of the Event Table
    walkthrough, where the attack is spread over many flows that each stay
    under the per-flow threshold.
    @raise Invalid_argument when [threshold < 1] or [global_budget < 1]. *)

val global_total : t -> int
(** Packets counted against the global budget so far by this instance. *)

val name : t -> string

val nf : t -> Speedybox.Nf.t

val count : t -> Sb_flow.Five_tuple.t -> int

val blocked_flows : t -> int
(** Flows whose counter has reached the threshold. *)

val dump : t -> string
