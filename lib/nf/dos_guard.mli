(** The DoS-prevention NF of the paper's Event Table walkthrough (Fig. 3):
    counts packets (or TCP SYNs) per flow and, once a flow's counter
    crosses the threshold, turns the flow's action from forward into drop.

    Under SpeedyBox the counter increment is a payload-IGNORE state
    function and the cut-off is a one-shot event — condition
    [count >= threshold], update [drop] — so a flow's fast path flips to
    early drop the moment it exceeds its budget, exactly the top-right
    transition of Fig. 3. *)

(** What the per-flow counter counts. *)
type count_mode = All_packets | Syn_only

type t

val create :
  ?name:string ->
  ?mode:count_mode ->
  ?global_budget:int ->
  ?cells:Sb_state.Store.replica ->
  threshold:int ->
  unit ->
  t
(** [global_budget] arms a chain-wide cut-off on top of the per-flow
    [threshold]: once that many packets have been counted {e in total}
    (across all flows, and — when instances share a state store — across
    all shards), every flow's armed event fires and further packets
    drop — the paper's "DoS budget" reading of the Event Table
    walkthrough, where the attack is spread over many flows that each stay
    under the per-flow threshold.

    [cells] is the shard's replica of a shared state store: the per-flow
    counters become a [Per_flow] cell ([NAME.flows]) and the budget total
    a [Global] G-counter ([NAME.total]).  Defaults to a private
    single-shard store, which behaves exactly like the old instance-local
    fields.
    @raise Invalid_argument when [threshold < 1] or [global_budget < 1]. *)

val global_total : t -> int
(** Packets counted against the global budget so far — merged across
    shards when the instance was created over a shared store. *)

val name : t -> string

val nf : t -> Speedybox.Nf.t

val count : t -> Sb_flow.Five_tuple.t -> int

val blocked_flows : t -> int
(** Flows whose counter has reached the threshold. *)

val dump : t -> string
