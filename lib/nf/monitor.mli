(** The network Monitor NF: per-flow packet and byte counters.

    The counter update is the canonical payload-IGNORE state function: it
    reads only the frame length, so it parallelises with anything under
    the Table I analysis.  Under SpeedyBox the per-flow increment closure
    is recorded in the Local MAT and keeps counting on the fast path; the
    equivalence tests compare the full counter table against the original
    chain's. *)

type counters = { mutable packets : int; mutable bytes : int }

type t

val create : ?name:string -> ?cells:Sb_state.Store.replica -> unit -> t
(** [cells] is the shard's replica of a shared state store.  The monitor
    declares per-flow counters ([NAME.flows]), Global chain-wide totals
    ([NAME.packets], [NAME.bytes] G-counters, [NAME.active] PN-counter of
    live flows, [NAME.max_len] max-register watermark) and a Per_shard
    diagnostic counter ([NAME.shard.packets]).  Defaults to a private
    single-shard store. *)

val name : t -> string

val nf : t -> Speedybox.Nf.t

val counters : t -> Sb_flow.Five_tuple.t -> counters option
(** Counters for the flow as keyed by the tuple the monitor saw (i.e.
    after any upstream rewrites). *)

val flow_count : t -> int

val total_packets : t -> int
(** Sum over this instance's per-flow counters (removal forgets). *)

val global_packets : t -> int
(** Chain-wide packets counted, merged across shards — unlike
    {!total_packets} this survives flow teardown. *)

val global_bytes : t -> int

val global_flows : t -> int
(** Live flows merged across shards (PN-counter: teardown retracts). *)

val global_max_len : t -> int
(** Largest frame observed anywhere (max-register), [0] before traffic. *)

val dump : t -> string
(** Sorted, human-readable counter table (the state digest). *)
