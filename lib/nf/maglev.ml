open Sb_packet
open Sb_flow
module Store = Sb_state.Store

type backend = { bname : string; ip : Ipv4_addr.t; mutable alive : bool }

type algorithm = Consistent | Mod_hash

type t = {
  name : string;
  table_size : int;
  algorithm : algorithm;
  backends : backend array;
  mutable table : int array;  (* slot -> backend index; -1 when no backend alive *)
  (* Declared state cells (lib/state).  The conntrack table is a Per_flow
     cell ([x]=backend index, [set]=assigned — an unassigned flow has no
     entry, exactly like the old Tuple_map); per-backend assignment
     counts are Global PN-counters and per-backend health a Global LWW
     register (1 alive / 0 dead) stamped by a per-instance operation
     counter, so every shard applying the same fail/restore sequence
     converges on the same verdict. *)
  assignments : Store.flow_cell;
  conns : Store.handle array;  (* by backend index *)
  health : Store.handle array;  (* by backend index *)
  mutable stamp : int;
}

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

(* FNV-1a over a string with a salt, for the two name hashes and the flow
   hash the Maglev paper calls h1, h2 and the 5-tuple hash. *)
let fnv_hash ~salt s =
  let h = ref (0x1b873593 + salt) in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

let populate_mod_hash table_size backends =
  let alive = ref [] in
  Array.iteri (fun i b -> if b.alive then alive := i :: !alive) backends;
  let alive = Array.of_list (List.rev !alive) in
  let table = Array.make table_size (-1) in
  if Array.length alive > 0 then
    Array.iteri (fun slot _ -> table.(slot) <- alive.(slot mod Array.length alive)) table;
  table

let populate_consistent table_size backends =
  let alive = ref [] in
  Array.iteri (fun i b -> if b.alive then alive := i :: !alive) backends;
  let alive = Array.of_list (List.rev !alive) in
  let table = Array.make table_size (-1) in
  if Array.length alive = 0 then table
  else begin
    let m = table_size in
    let offsets = Array.map (fun i -> fnv_hash ~salt:1 backends.(i).bname mod m) alive in
    let skips = Array.map (fun i -> (fnv_hash ~salt:2 backends.(i).bname mod (m - 1)) + 1) alive in
    let next = Array.make (Array.length alive) 0 in
    let filled = ref 0 in
    while !filled < m do
      for k = 0 to Array.length alive - 1 do
        if !filled < m then begin
          (* Walk backend k's permutation to its next empty slot. *)
          let slot = ref ((offsets.(k) + (next.(k) * skips.(k))) mod m) in
          while table.(!slot) >= 0 do
            next.(k) <- next.(k) + 1;
            slot := (offsets.(k) + (next.(k) * skips.(k))) mod m
          done;
          table.(!slot) <- alive.(k);
          next.(k) <- next.(k) + 1;
          incr filled
        end
      done
    done;
    table
  end

let populate algorithm table_size backends =
  match algorithm with
  | Consistent -> populate_consistent table_size backends
  | Mod_hash -> populate_mod_hash table_size backends

(* Health writes are LWW: the stamp is a per-instance operation counter,
   so shards replaying the same create/fail/restore sequence write equal
   stamps and the shard-index tie-break keeps the merge deterministic. *)
let mark_health t i alive =
  t.stamp <- t.stamp + 1;
  Store.write t.health.(i) ~stamp:t.stamp (if alive then 1 else 0)

(* Assignment bookkeeping: the flow entry mirrors the old Tuple_map (no
   entry = untracked), and every transition retargets the per-backend
   PN-counters — decrement the backend the flow leaves, increment the one
   it joins. *)
let track t tuple i =
  match Store.flow_find t.assignments tuple with
  | Some e when e.Store.set ->
      if e.Store.x <> i then begin
        Store.sub t.conns.(e.Store.x) 1;
        Store.add t.conns.(i) 1;
        e.Store.x <- i
      end
  | Some e ->
      e.Store.x <- i;
      e.Store.set <- true;
      Store.add t.conns.(i) 1
  | None ->
      let e = Store.flow_entry t.assignments tuple in
      e.Store.x <- i;
      e.Store.set <- true;
      Store.add t.conns.(i) 1

let untrack t tuple =
  match Store.flow_find t.assignments tuple with
  | Some e ->
      if e.Store.set then Store.sub t.conns.(e.Store.x) 1;
      Store.flow_remove t.assignments tuple
  | None -> ()

let tracked t tuple =
  match Store.flow_find t.assignments tuple with
  | Some e when e.Store.set -> Some e.Store.x
  | Some _ | None -> None

let create ?(name = "maglev") ?(table_size = 251) ?(algorithm = Consistent) ?cells
    ~backends () =
  if backends = [] then invalid_arg "Maglev.create: no backends";
  if not (is_prime table_size) then invalid_arg "Maglev.create: table size must be prime";
  let names = List.map fst backends in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Maglev.create: duplicate backend names";
  let backends =
    Array.of_list (List.map (fun (bname, ip) -> { bname; ip; alive = true }) backends)
  in
  let cells = match cells with Some r -> r | None -> Store.solo () in
  let t =
    {
      name;
      table_size;
      algorithm;
      backends;
      table = populate algorithm table_size backends;
      assignments = Store.flow cells ~name:(name ^ ".assign");
      conns =
        Array.map
          (fun b ->
            Store.global cells ~name:(name ^ ".conns." ^ b.bname) Sb_state.Kind.Pn_counter)
          backends;
      health =
        Array.map
          (fun b ->
            Store.global cells ~name:(name ^ ".alive." ^ b.bname) Sb_state.Kind.Lww_register)
          backends;
      stamp = 0;
    }
  in
  Array.iteri (fun i _ -> mark_health t i true) t.backends;
  t

let name t = t.name

let backend_index t bname =
  let found = ref (-1) in
  Array.iteri (fun i b -> if String.equal b.bname bname then found := i) t.backends;
  if !found < 0 then invalid_arg (Printf.sprintf "Maglev: unknown backend %s" bname);
  !found

let fail_backend t bname =
  let i = backend_index t bname in
  t.backends.(i).alive <- false;
  mark_health t i false;
  t.table <- populate t.algorithm t.table_size t.backends

let restore_backend t bname =
  let i = backend_index t bname in
  t.backends.(i).alive <- true;
  mark_health t i true;
  t.table <- populate t.algorithm t.table_size t.backends

let alive_backends t =
  Array.to_list t.backends |> List.filter (fun b -> b.alive) |> List.map (fun b -> b.bname)

let lookup_table t =
  Array.map (fun i -> if i < 0 then "-" else t.backends.(i).bname) t.table

let backend_of_flow t tuple = Option.map (fun i -> t.backends.(i).bname) (tracked t tuple)

let tracked_flows t = Store.flow_count t.assignments

let backend_conns t bname = Store.read_merged t.conns.(backend_index t bname)

let backend_health t bname = Store.read_merged t.health.(backend_index t bname) = 1

let dump t =
  let assignments =
    Store.flow_fold
      (fun tuple e acc ->
        Format.asprintf "%a -> %s" Five_tuple.pp tuple t.backends.(e.Store.x).bname :: acc)
      t.assignments []
    |> List.sort String.compare
  in
  String.concat "\n"
    ((Printf.sprintf "alive=[%s]" (String.concat "," (alive_backends t))) :: assignments)

let table_lookup t tuple =
  let h = fnv_hash ~salt:3 (Format.asprintf "%a" Five_tuple.pp tuple) in
  t.table.(h mod t.table_size)

(* The flow's current backend: the tracked one while it is alive, otherwise
   a fresh consistent-hash selection (retracked) — the Maglev rerouting
   behaviour both the original path and the fired event go through.  With
   every backend dead there is nothing to select: the assignment is
   dropped (so the flow re-selects once a backend is restored) and the
   caller turns the packet into a drop. *)
let current_backend t tuple =
  let select () =
    let i = table_lookup t tuple in
    if i < 0 then begin
      untrack t tuple;
      None
    end
    else begin
      track t tuple i;
      Some t.backends.(i)
    end
  in
  match tracked t tuple with
  | Some i when t.backends.(i).alive -> Some t.backends.(i)
  | Some _ | None -> select ()

(* The per-flow reroute actions at fire time: a fresh backend selection, or
   a plain drop while no backend is alive. *)
let reroute_actions t tuple () =
  match current_backend t tuple with
  | Some backend ->
      [ Sb_mat.Header_action.Modify [ (Field.Dst_ip, Field.Ip backend.ip) ] ]
  | None -> [ Sb_mat.Header_action.Drop ]

let process t ctx packet =
  let tuple = Five_tuple.of_packet packet in
  let register_reroute () =
    (* Recurring: fires when the tracked backend dies, and again (for a
       flow parked on a drop by total backend failure) when any backend
       comes back. *)
    Speedybox.Api.register_event ctx ~one_shot:false
      ~condition:(fun () ->
        match tracked t tuple with
        | Some i -> not (t.backends.(i).alive)
        | None -> Array.exists (fun b -> b.alive) t.backends)
      ~new_actions:(reroute_actions t tuple)
      ~update_fn:(fun () -> ignore (current_backend t tuple))
      ()
  in
  match current_backend t tuple with
  | None ->
      (* Total backend failure: the flow degrades to a recorded drop — a
         reachability verdict, never an exception out of the datapath. *)
      let action = Sb_mat.Header_action.Drop in
      Speedybox.Api.localmat_add_ha ctx action;
      register_reroute ();
      Speedybox.Nf.dropped
        (Sb_sim.Cycles.parse + Sb_sim.Cycles.classify + Sb_sim.Cycles.lb_consistent_hash
       + Sb_mat.Header_action.cost action)
  | Some backend ->
      let action = Sb_mat.Header_action.Modify [ (Field.Dst_ip, Field.Ip backend.ip) ] in
      let apply_cost = Sb_mat.Header_action.cost action in
      (match Sb_mat.Header_action.apply action packet with
      | Sb_mat.Header_action.Forwarded -> ()
      | Sb_mat.Header_action.Dropped -> assert false (* modify never drops *));
      Speedybox.Api.localmat_add_ha ctx action;
      register_reroute ();
      Speedybox.Nf.forwarded
        (Sb_sim.Cycles.parse + Sb_sim.Cycles.classify + Sb_sim.Cycles.lb_consistent_hash
       + apply_cost)

let nf t =
  Speedybox.Nf.make ~name:t.name
    ~state_digest:(fun () -> dump t)
    (fun ctx packet -> process t ctx packet)
