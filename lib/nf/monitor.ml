open Sb_packet
open Sb_flow
module Store = Sb_state.Store

type counters = { mutable packets : int; mutable bytes : int }

type t = {
  name : string;
  (* Declared state cells (lib/state).  Per-flow counters use entry lanes
     [x]=packets, [y]=bytes; [set] marks the flow as counted in the
     Global active-flow PN-counter (so idle teardown can retract it).
     The chain-wide packet/byte totals and the largest-frame watermark are
     Global cells; [shard_packets] is a Per_shard diagnostic counter. *)
  flows : Store.flow_cell;
  packets : Store.handle;
  bytes : Store.handle;
  active : Store.handle;
  max_len : Store.handle;
  shard_packets : Store.handle;
}

let create ?(name = "monitor") ?cells () =
  let cells = match cells with Some r -> r | None -> Store.solo () in
  {
    name;
    flows = Store.flow cells ~name:(name ^ ".flows");
    packets = Store.global cells ~name:(name ^ ".packets") Sb_state.Kind.G_counter;
    bytes = Store.global cells ~name:(name ^ ".bytes") Sb_state.Kind.G_counter;
    active = Store.global cells ~name:(name ^ ".active") Sb_state.Kind.Pn_counter;
    max_len = Store.global cells ~name:(name ^ ".max_len") Sb_state.Kind.Max_register;
    shard_packets =
      Store.per_shard cells ~name:(name ^ ".shard.packets") Sb_state.Kind.G_counter;
  }

let name t = t.name

let counters t tuple =
  match Store.flow_find t.flows tuple with
  | Some e -> Some { packets = e.Store.x; bytes = e.Store.y }
  | None -> None

let flow_count t = Store.flow_count t.flows

let total_packets t = Store.flow_fold (fun _ e acc -> acc + e.Store.x) t.flows 0

let global_packets t = Store.read_merged t.packets

let global_bytes t = Store.read_merged t.bytes

let global_flows t = Store.read_merged t.active

let global_max_len t = Store.read_merged t.max_len

let dump t =
  Store.flow_fold
    (fun tuple e acc ->
      Format.asprintf "%a pkts=%d bytes=%d" Five_tuple.pp tuple e.Store.x e.Store.y :: acc)
    t.flows []
  |> List.sort String.compare
  |> String.concat "\n"

(* Keyed per packet, exactly as the original monitor code does: an
   upstream event (e.g. Maglev rerouting the flow to a new backend) changes
   the header mid-stream, and the counters must then split across the old
   and new tuples just as they do on the original path. *)
let count t packet =
  let tuple = Five_tuple.of_packet packet in
  let cell = Store.flow_entry t.flows tuple in
  if not cell.Store.set then begin
    cell.Store.set <- true;
    Store.add t.active 1
  end;
  let len = packet.Packet.len in
  cell.Store.x <- cell.Store.x + 1;
  cell.Store.y <- cell.Store.y + len;
  Store.add t.packets 1;
  Store.add t.bytes len;
  Store.observe t.max_len len;
  Store.add t.shard_packets 1;
  Sb_sim.Cycles.monitor_count

let process t ctx packet =
  let count_cycles = count t packet in
  Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Forward;
  Speedybox.Api.localmat_add_sf ctx
    (Sb_mat.State_function.make ~nf:t.name ~label:"monitor.count"
       ~mode:Sb_mat.State_function.Ignore
       (fun pkt -> count t pkt));
  Speedybox.Nf.forwarded
    (Sb_sim.Cycles.parse + Sb_sim.Cycles.classify + count_cycles + Sb_sim.Cycles.ha_forward)

let nf t =
  Speedybox.Nf.make ~name:t.name
    ~state_digest:(fun () -> dump t)
    ~remove_flow:(fun tuple ->
      match Store.flow_find t.flows tuple with
      | Some e ->
          if e.Store.set then Store.sub t.active 1;
          Store.flow_remove t.flows tuple
      | None -> ())
    (fun ctx packet -> process t ctx packet)
