open Sb_packet
open Sb_flow

type counters = { mutable packets : int; mutable bytes : int }

type t = { name : string; flows : counters Tuple_map.t }

let create ?(name = "monitor") () = { name; flows = Tuple_map.create 256 }

let name t = t.name

let counters t tuple = Tuple_map.find_opt t.flows tuple

let flow_count t = Tuple_map.length t.flows

let total_packets t = Tuple_map.fold (fun _ c acc -> acc + c.packets) t.flows 0

let dump t =
  Tuple_map.fold
    (fun tuple c acc ->
      Format.asprintf "%a pkts=%d bytes=%d" Five_tuple.pp tuple c.packets c.bytes :: acc)
    t.flows []
  |> List.sort String.compare
  |> String.concat "\n"

(* Keyed per packet, exactly as the original monitor code does: an
   upstream event (e.g. Maglev rerouting the flow to a new backend) changes
   the header mid-stream, and the counters must then split across the old
   and new tuples just as they do on the original path. *)
let count t packet =
  let tuple = Five_tuple.of_packet packet in
  let cell =
    Tuple_map.find_or_add t.flows tuple ~default:(fun () -> { packets = 0; bytes = 0 })
  in
  cell.packets <- cell.packets + 1;
  cell.bytes <- cell.bytes + packet.Packet.len;
  Sb_sim.Cycles.monitor_count

let process t ctx packet =
  let count_cycles = count t packet in
  Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Forward;
  Speedybox.Api.localmat_add_sf ctx
    (Sb_mat.State_function.make ~nf:t.name ~label:"monitor.count"
       ~mode:Sb_mat.State_function.Ignore
       (fun pkt -> count t pkt));
  Speedybox.Nf.forwarded
    (Sb_sim.Cycles.parse + Sb_sim.Cycles.classify + count_cycles + Sb_sim.Cycles.ha_forward)

let nf t =
  Speedybox.Nf.make ~name:t.name
    ~state_digest:(fun () -> dump t)
    ~remove_flow:(fun tuple -> Tuple_map.remove t.flows tuple)
    (fun ctx packet -> process t ctx packet)
