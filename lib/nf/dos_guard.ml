open Sb_packet
open Sb_flow
module Store = Sb_state.Store

type count_mode = All_packets | Syn_only

type t = {
  name : string;
  mode : count_mode;
  threshold : int;
  budget : int option;
  (* Declared state cells (lib/state): the per-flow counters live in a
     Per_flow cell keyed by 5-tuple — entry lanes are [x]=count,
     [y]=last counted TCP seq, [set]=seq valid — and the chain-wide
     budget total is a Global G-counter, so a sharded deployment (one
     instance per shard over one shared store) sums the per-shard
     contributions instead of silently partitioning them. *)
  flows : Store.flow_cell;
  total : Store.handle;
}

let create ?(name = "dosguard") ?(mode = All_packets) ?global_budget ?cells ~threshold () =
  if threshold < 1 then invalid_arg "Dos_guard.create: threshold must be positive";
  (match global_budget with
  | Some b when b < 1 -> invalid_arg "Dos_guard.create: global budget must be positive"
  | Some _ | None -> ());
  let cells = match cells with Some r -> r | None -> Store.solo () in
  {
    name;
    mode;
    threshold;
    budget = global_budget;
    flows = Store.flow cells ~name:(name ^ ".flows");
    total = Store.global cells ~name:(name ^ ".total") Sb_state.Kind.G_counter;
  }

let name t = t.name

let global_total t = Store.read_merged t.total

let over_budget t =
  match t.budget with Some b -> Store.read_merged t.total >= b | None -> false

let count t tuple =
  match Store.flow_find t.flows tuple with Some e -> e.Store.x | None -> 0

let blocked_flows t =
  Store.flow_fold
    (fun _ e acc -> if e.Store.x >= t.threshold then acc + 1 else acc)
    t.flows 0

let dump t =
  Store.flow_fold
    (fun tuple e acc -> Format.asprintf "%a cnt=%d" Five_tuple.pp tuple e.Store.x :: acc)
    t.flows []
  |> List.sort String.compare
  |> String.concat "\n"

let counts_packet t packet =
  match t.mode with
  | All_packets -> true
  | Syn_only -> (
      match Packet.proto packet with
      | Packet.Tcp -> (Packet.tcp_flags packet).Tcp.Flags.syn
      | Packet.Udp -> false)

(* Shared by the slow path and the recorded fast-path state function, so
   both paths agree on what counts — including the duplicate skip.  The
   duplicate check compares the entry's [y] lane against the packet's
   seq; UDP has no sequence numbers, so UDP duplicates stay
   indistinguishable from new packets. *)
let bump t (cell : Store.entry) packet =
  let count_one () =
    cell.Store.x <- cell.Store.x + 1;
    Store.add t.total 1
  in
  (if counts_packet t packet then
     match Packet.proto packet with
     | Packet.Udp -> count_one ()
     | Packet.Tcp ->
         let seq = Tcp.get_seq packet.Packet.buf (Packet.l4_offset packet) in
         let seq_i = Int32.to_int seq land 0xFFFFFFFF in
         if not (cell.Store.set && cell.Store.y = seq_i) then begin
           count_one ();
           cell.Store.y <- seq_i;
           cell.Store.set <- true
         end);
  Sb_sim.Cycles.monitor_count

let process t ctx packet =
  let tuple = Five_tuple.of_packet packet in
  let cell = Store.flow_entry t.flows tuple in
  let base = Sb_sim.Cycles.parse + Sb_sim.Cycles.classify in
  if cell.Store.x >= t.threshold || over_budget t then begin
    (* Over budget: the flow is cut off before any further counting. *)
    Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Drop;
    Speedybox.Nf.dropped (base + Sb_sim.Cycles.ha_drop)
  end
  else begin
    let count_cycles = bump t cell packet in
    Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Forward;
    Speedybox.Api.localmat_add_sf ctx
      (Sb_mat.State_function.make ~nf:t.name ~label:"dos.count"
         ~mode:Sb_mat.State_function.Ignore
         (fun pkt -> bump t cell pkt));
    Speedybox.Api.register_event ctx
      ~global_state:(t.budget <> None)
      ~condition:(fun () -> cell.Store.x >= t.threshold || over_budget t)
      ~new_actions:(fun () -> [ Sb_mat.Header_action.Drop ])
        (* once the flow is cut off the original NF stops counting too *)
      ~new_state_functions:(fun () -> [])
      ();
    Speedybox.Nf.forwarded (base + count_cycles + Sb_sim.Cycles.ha_forward)
  end

let nf t =
  Speedybox.Nf.make ~name:t.name
    ~state_digest:(fun () -> dump t)
      (* Idle teardown reclaims counters below the threshold; a flow that
         earned a block keeps it even through a quiet spell. *)
    ~remove_flow:(fun tuple ->
      match Store.flow_find t.flows tuple with
      | Some e when e.Store.x < t.threshold -> Store.flow_remove t.flows tuple
      | Some _ | None -> ())
    (fun ctx packet -> process t ctx packet)
