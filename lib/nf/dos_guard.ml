open Sb_packet
open Sb_flow

type count_mode = All_packets | Syn_only

type cell = { mutable count : int }

type t = { name : string; mode : count_mode; threshold : int; flows : cell Tuple_map.t }

let create ?(name = "dosguard") ?(mode = All_packets) ~threshold () =
  if threshold < 1 then invalid_arg "Dos_guard.create: threshold must be positive";
  { name; mode; threshold; flows = Tuple_map.create 256 }

let name t = t.name

let count t tuple =
  match Tuple_map.find_opt t.flows tuple with Some c -> c.count | None -> 0

let blocked_flows t =
  Tuple_map.fold (fun _ c acc -> if c.count >= t.threshold then acc + 1 else acc) t.flows 0

let dump t =
  Tuple_map.fold
    (fun tuple c acc -> Format.asprintf "%a cnt=%d" Five_tuple.pp tuple c.count :: acc)
    t.flows []
  |> List.sort String.compare
  |> String.concat "\n"

let counts_packet t packet =
  match t.mode with
  | All_packets -> true
  | Syn_only -> (
      match Packet.proto packet with
      | Packet.Tcp -> (Packet.tcp_flags packet).Tcp.Flags.syn
      | Packet.Udp -> false)

let bump t cell packet =
  if counts_packet t packet then cell.count <- cell.count + 1;
  Sb_sim.Cycles.monitor_count

let process t ctx packet =
  let tuple = Five_tuple.of_packet packet in
  let cell = Tuple_map.find_or_add t.flows tuple ~default:(fun () -> { count = 0 }) in
  let base = Sb_sim.Cycles.parse + Sb_sim.Cycles.classify in
  if cell.count >= t.threshold then begin
    (* Over budget: the flow is cut off before any further counting. *)
    Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Drop;
    Speedybox.Nf.dropped (base + Sb_sim.Cycles.ha_drop)
  end
  else begin
    let count_cycles = bump t cell packet in
    Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Forward;
    Speedybox.Api.localmat_add_sf ctx
      (Sb_mat.State_function.make ~nf:t.name ~label:"dos.count"
         ~mode:Sb_mat.State_function.Ignore
         (fun pkt -> bump t cell pkt));
    Speedybox.Api.register_event ctx
      ~condition:(fun () -> cell.count >= t.threshold)
      ~new_actions:(fun () -> [ Sb_mat.Header_action.Drop ])
        (* once the flow is cut off the original NF stops counting too *)
      ~new_state_functions:(fun () -> [])
      ();
    Speedybox.Nf.forwarded (base + count_cycles + Sb_sim.Cycles.ha_forward)
  end

let nf t =
  Speedybox.Nf.make ~name:t.name
    ~state_digest:(fun () -> dump t)
      (* Idle teardown reclaims counters below the threshold; a flow that
         earned a block keeps it even through a quiet spell. *)
    ~remove_flow:(fun tuple ->
      match Tuple_map.find_opt t.flows tuple with
      | Some c when c.count < t.threshold -> Tuple_map.remove t.flows tuple
      | Some _ | None -> ())
    (fun ctx packet -> process t ctx packet)
