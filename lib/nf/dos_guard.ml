open Sb_packet
open Sb_flow

type count_mode = All_packets | Syn_only

type cell = {
  mutable count : int;
  (* Sequence number of the last TCP packet this cell counted: a packet
     re-presenting the same seq (a duplicate or an immediate retransmit)
     is not counted again, so duplication cannot push a flow over its
     budget or double-fire the armed budget event.  UDP has no sequence
     numbers, so UDP duplicates stay indistinguishable from new packets. *)
  mutable last_seq : int32;
  mutable has_last : bool;
}

type t = {
  name : string;
  mode : count_mode;
  threshold : int;
  budget : int option;
  (* Chain-wide packet budget bookkeeping for [global_budget].  KNOWN
     LIMITATION: this total lives in the NF instance, so a sharded
     deployment — one instance per shard — partitions it silently and a
     budget crossed only by the sum across shards never fires (the
     regression test in test_state_diff.ml pins this down). *)
  mutable total : int;
  flows : cell Tuple_map.t;
}

let create ?(name = "dosguard") ?(mode = All_packets) ?global_budget ~threshold () =
  if threshold < 1 then invalid_arg "Dos_guard.create: threshold must be positive";
  (match global_budget with
  | Some b when b < 1 -> invalid_arg "Dos_guard.create: global budget must be positive"
  | Some _ | None -> ());
  { name; mode; threshold; budget = global_budget; total = 0; flows = Tuple_map.create 256 }

let name t = t.name

let global_total t = t.total

let over_budget t = match t.budget with Some b -> t.total >= b | None -> false

let count t tuple =
  match Tuple_map.find_opt t.flows tuple with Some c -> c.count | None -> 0

let blocked_flows t =
  Tuple_map.fold (fun _ c acc -> if c.count >= t.threshold then acc + 1 else acc) t.flows 0

let dump t =
  Tuple_map.fold
    (fun tuple c acc -> Format.asprintf "%a cnt=%d" Five_tuple.pp tuple c.count :: acc)
    t.flows []
  |> List.sort String.compare
  |> String.concat "\n"

let counts_packet t packet =
  match t.mode with
  | All_packets -> true
  | Syn_only -> (
      match Packet.proto packet with
      | Packet.Tcp -> (Packet.tcp_flags packet).Tcp.Flags.syn
      | Packet.Udp -> false)

(* Shared by the slow path and the recorded fast-path state function, so
   both paths agree on what counts — including the duplicate skip. *)
let bump t cell packet =
  let count_one () =
    cell.count <- cell.count + 1;
    t.total <- t.total + 1
  in
  (if counts_packet t packet then
     match Packet.proto packet with
     | Packet.Udp -> count_one ()
     | Packet.Tcp ->
         let seq = Tcp.get_seq packet.Packet.buf (Packet.l4_offset packet) in
         if not (cell.has_last && Int32.equal cell.last_seq seq) then begin
           count_one ();
           cell.last_seq <- seq;
           cell.has_last <- true
         end);
  Sb_sim.Cycles.monitor_count

let process t ctx packet =
  let tuple = Five_tuple.of_packet packet in
  let cell =
    Tuple_map.find_or_add t.flows tuple ~default:(fun () ->
        { count = 0; last_seq = 0l; has_last = false })
  in
  let base = Sb_sim.Cycles.parse + Sb_sim.Cycles.classify in
  if cell.count >= t.threshold || over_budget t then begin
    (* Over budget: the flow is cut off before any further counting. *)
    Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Drop;
    Speedybox.Nf.dropped (base + Sb_sim.Cycles.ha_drop)
  end
  else begin
    let count_cycles = bump t cell packet in
    Speedybox.Api.localmat_add_ha ctx Sb_mat.Header_action.Forward;
    Speedybox.Api.localmat_add_sf ctx
      (Sb_mat.State_function.make ~nf:t.name ~label:"dos.count"
         ~mode:Sb_mat.State_function.Ignore
         (fun pkt -> bump t cell pkt));
    Speedybox.Api.register_event ctx
      ~condition:(fun () -> cell.count >= t.threshold || over_budget t)
      ~new_actions:(fun () -> [ Sb_mat.Header_action.Drop ])
        (* once the flow is cut off the original NF stops counting too *)
      ~new_state_functions:(fun () -> [])
      ();
    Speedybox.Nf.forwarded (base + count_cycles + Sb_sim.Cycles.ha_forward)
  end

let nf t =
  Speedybox.Nf.make ~name:t.name
    ~state_digest:(fun () -> dump t)
      (* Idle teardown reclaims counters below the threshold; a flow that
         earned a block keeps it even through a quiet spell. *)
    ~remove_flow:(fun tuple ->
      match Tuple_map.find_opt t.flows tuple with
      | Some c when c.count < t.threshold -> Tuple_map.remove t.flows tuple
      | Some _ | None -> ())
    (fun ctx packet -> process t ctx packet)
