(** The Maglev load balancer NF (Eisenbud et al., NSDI 2016).

    Implements the lookup-table population algorithm of §3.4 of the Maglev
    paper — each backend fills a prime-sized table by walking its own
    permutation [(offset + j*skip) mod M] — plus per-flow connection
    tracking.  When a backend fails the table is rebuilt over the survivors
    (consistent hashing keeps most entries stable) and tracked flows
    assigned to the dead backend are rerouted on their next packet.

    This NF is the paper's showcase for the Event Table (§V-A Observation
    #2): under SpeedyBox it registers a recurring per-flow event whose
    condition is "the flow's tracked backend is dead" and whose update
    replaces the recorded [modify(DIP)] with one pointing at the newly
    selected backend.

    Total backend failure is a reachability verdict, not an error: with no
    backend alive, packets get a [Drop] verdict (recorded, so fast paths
    early-drop) and the flow's assignment is released; the same recurring
    event re-selects a backend — and rewrites the drop rule back to a
    forward — once one is restored. *)

(** How the lookup table is populated. *)
type algorithm =
  | Consistent  (** the Maglev §3.4 permutation algorithm *)
  | Mod_hash
      (** the naive baseline: slot [i] owned by alive backend
          [i mod n_alive] — any membership change reshuffles almost every
          slot, which the disruption ablation quantifies *)

type t

val create :
  ?name:string ->
  ?table_size:int ->
  ?algorithm:algorithm ->
  ?cells:Sb_state.Store.replica ->
  backends:(string * Sb_packet.Ipv4_addr.t) list ->
  unit ->
  t
(** [table_size] must be prime (default 251; Maglev production uses 65537);
    [algorithm] defaults to [Consistent].  [cells] is the shard's replica
    of a shared state store: conntrack becomes a [Per_flow] cell
    ([NAME.assign]) that migrates with the flow, and each backend gets a
    [Global] PN-counter of assignments ([NAME.conns.B]) and a [Global]
    LWW health register ([NAME.alive.B]).  Defaults to a private
    single-shard store.
    @raise Invalid_argument on a non-prime size, empty backend list or
    duplicate backend names. *)

val name : t -> string

val nf : t -> Speedybox.Nf.t

val fail_backend : t -> string -> unit
(** Marks the backend dead and rebuilds the lookup table.
    @raise Invalid_argument on an unknown name. *)

val restore_backend : t -> string -> unit

val alive_backends : t -> string list

val lookup_table : t -> string array
(** The current table as backend names, for inspecting balance and
    disruption properties in tests. *)

val backend_of_flow : t -> Sb_flow.Five_tuple.t -> string option
(** The tracked assignment, if any (may point at a dead backend until the
    flow's next packet reroutes it). *)

val tracked_flows : t -> int

val backend_conns : t -> string -> int
(** Flows currently assigned to the backend, merged across shards
    (PN-counter: reroutes and releases retract).
    @raise Invalid_argument on an unknown name. *)

val backend_health : t -> string -> bool
(** The merged LWW health verdict for the backend — the last
    fail/restore write anywhere wins.
    @raise Invalid_argument on an unknown name. *)

val dump : t -> string
