(** Flow steering: which shard owns a packet.

    Steering is by {e symmetric} flow hash — both directions of a
    connection map to the same shard — so everything keyed per flow or per
    connection (conntrack entries, consolidated rules, per-flow NF state,
    armed events) lands on a single shard and never needs cross-shard
    coordination.  Non-TCP/UDP packets carry no 5-tuple and all steer to
    shard 0. *)

val shard_of_tuple : shards:int -> Sb_flow.Five_tuple.t -> int
(** [shard_of_tuple ~shards t] maps the tuple (or its reverse — the result
    is the same) to a shard in [0 .. shards-1]. *)

val shard_of_packet : shards:int -> Sb_packet.Packet.t -> int
(** Steering by the packet's current header fields; [0] for packets
    without a 5-tuple. *)
