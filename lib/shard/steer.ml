(* Direction-normalise before hashing: both orientations of a connection
   must reach the same shard, so hash the lexicographically smaller of the
   tuple and its reverse.  [Five_tuple.hash] is already well mixed; a
   final multiplicative scramble decorrelates the modulo from the hash's
   low bits. *)
let canonical t =
  let r = Sb_flow.Five_tuple.reverse t in
  if Sb_flow.Five_tuple.compare t r <= 0 then t else r

let shard_of_tuple ~shards t =
  if shards < 1 then invalid_arg "Steer.shard_of_tuple: shards must be positive";
  if shards = 1 then 0
  else begin
    let h = Sb_flow.Five_tuple.hash (canonical t) in
    let h = h * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 31)) land max_int mod shards
  end

let shard_of_packet ~shards packet =
  match Sb_flow.Five_tuple.of_packet_opt packet with
  | Some t -> shard_of_tuple ~shards t
  | None -> 0
