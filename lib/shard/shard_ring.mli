(** A bounded single-producer/single-consumer ring buffer.

    The hand-off primitive of the Domain-parallel executor: exactly one
    domain pushes and exactly one domain pops, which lets both sides run
    lock-free on a pair of monotonically increasing [Atomic] cursors over
    a power-of-two slot array.  Each side caches the peer's cursor and
    refreshes it only on apparent full/empty, so an uncontended push or
    pop is one atomic store plus one plain load — no mutex, no shared
    write other than the owned cursor.

    Blocking operations back off in three stages: a bounded spin of
    [Domain.cpu_relax], then parking on a condition variable that the peer
    signals only when it observes a parked flag — the fast path pays one
    read-mostly atomic load for that.

    Termination is explicit: the producer calls {!close} after its last
    push, and {!pop} returns [None] once the ring is closed {e and}
    drained, replacing in-band stop sentinels. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [capacity] (>= 1) is rounded up to a power of two.  [dummy] fills
    empty slots so popped values are not retained against the GC; it is
    never returned. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Occupied slots; racy by nature, exact only when both sides are
    quiescent. *)

val push : 'a t -> 'a -> unit
(** Producer only.  Blocks (spin, then park) while full.
    @raise Invalid_argument if the ring is closed. *)

val try_push : 'a t -> 'a -> bool
(** Producer only.  [false] when full; never blocks.
    @raise Invalid_argument if the ring is closed. *)

val push_batch : 'a t -> 'a array -> pos:int -> len:int -> int
(** Producer only.  Pushes as many of [src.(pos .. pos+len-1)] as fit
    right now under a single cursor publish; returns how many. *)

val pop : 'a t -> 'a option
(** Consumer only.  Blocks (spin, then park) while empty; [None] once the
    ring is closed and drained — the producer's last push wins over a
    concurrent close. *)

val try_pop : 'a t -> 'a option
(** Consumer only.  [None] when nothing is available {e right now};
    distinguish termination with {!closed_and_drained}. *)

val pop_batch : 'a t -> 'a array -> int
(** Consumer only.  Pops up to [Array.length dst] currently-available
    items into [dst] under a single cursor publish; returns how many
    (0 when empty). *)

val close : 'a t -> unit
(** Producer only, after its final push.  Wakes a parked consumer;
    idempotent. *)

val is_closed : 'a t -> bool

val closed_and_drained : 'a t -> bool
(** The consumer will never see another item. *)

(** Ring telemetry, accumulated in owner-written plain fields — the hot
    path pays ordinary stores on memory the owning domain alone writes, no
    atomics. *)
type stats = {
  pushes : int;  (** items successfully pushed (batch pushes count items) *)
  pops : int;  (** items successfully popped *)
  push_spins : int;  (** [cpu_relax] iterations inside blocking {!push} *)
  pop_spins : int;  (** [cpu_relax] iterations inside blocking {!pop} *)
  push_parks : int;  (** times the producer parked on the condvar *)
  pop_parks : int;  (** times the consumer parked on the condvar *)
  highwater : int;  (** max occupancy lower bound observed at a push *)
}

val stats : 'a t -> stats
(** Exact only once both sides are quiescent (e.g. after [Domain.join]);
    mid-run reads are racy lower bounds.  The parallel executor folds
    these into per-shard [speedybox_ring_*] metrics after the join. *)
