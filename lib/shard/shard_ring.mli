(** A bounded blocking queue: the per-shard input ring of the
    Domain-parallel executor.

    Deliberately {e blocking} (mutex + condition variables), never
    spinning: the producer sleeps when a shard's ring is full
    (backpressure), the consumer sleeps when it is empty — so the executor
    stays correct and civil even on a single-core box, where a spin-wait
    would starve the domain it is waiting on. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Blocks while the ring is full. *)

val pop : 'a t -> 'a
(** Blocks while the ring is empty. *)

val length : 'a t -> int
