(** The Domain-parallel executor over a {!Sharded.t} plan.

    One OCaml domain per shard, each looping over a bounded input ring
    ({!Shard_ring}) of packet batches; the caller's thread steers the
    trace into per-shard batches, and per-shard accumulators merge into
    one {!Speedybox.Runtime.run_result} at the end
    ({!Speedybox.Runtime.Acc.absorb}).  Workers drain their {!Control}
    inbox at batch boundaries, so fault broadcasts still converge —
    eventually rather than before-the-very-next-packet, which is why this
    executor trades the deterministic one's bit-exactness for wall-clock
    scaling.  Rings block (mutex + condition) rather than spin, so the
    executor degrades gracefully to time-slicing on fewer cores than
    shards.

    Restrictions, both checked up front: no fault injector (the injector's
    per-NF draw sequences are global mutable state — racing domains over
    them would corrupt the schedule, not just reorder it), and a disarmed
    observability sink (metrics/trace/timeline sinks are unsynchronised).
    Organic NF behaviour, including raising NFs, is fine — containment is
    per-shard and health broadcasts are mutex-protected. *)

val run_trace :
  ?burst:int ->
  Sharded.t ->
  Sb_packet.Packet.t list ->
  Speedybox.Runtime.run_result
(** [run_trace ~burst t packets] processes the trace across one domain per
    shard (batches of [burst], default {!Speedybox.Runtime.default_burst}).
    Aggregates equal the deterministic executor's whenever processing is
    order-independent across shards (per-flow chains, no faults); per-flow
    results always match, since steering is identical.
    @raise Invalid_argument when [burst < 1], when the plan carries an
    injector, or when its observability sink is armed. *)
