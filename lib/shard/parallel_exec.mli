(** The Domain-parallel executor over a {!Sharded.t} plan.

    Feederless: the trace is split into one contiguous slice per shard,
    and each domain runs the whole-burst steering prescan over its own
    slice — home-shard packets and misdirected ones alike travel as
    pointer batches over an N x N mesh of lock-free SPSC rings
    ({!Shard_ring}), with empty batches recycling back over return rings
    so the steady state allocates nothing per batch.  The receiving shard
    copies originals into its own scratch pool ({!Sb_packet.Packet.copy_into})
    and processes them with {!Speedybox.Runtime.process_burst_into}; it
    drains sources in slice order, so a flow's packets keep their global
    trace order and per-flow results stay bit-exact with the deterministic
    executor.

    Aggregates equal the deterministic executor's whenever processing is
    order-independent across shards (per-flow chains, no faults); health
    broadcasts over {!Control} converge at batch boundaries — eventually
    rather than before-the-very-next-packet, which is the one freedom this
    executor trades for wall-clock scaling.  Steering bookkeeping (packet
    counts, the flow directory) is kept per domain and merged into the
    plan after the join.

    One restriction, checked up front: no fault injector (the injector's
    per-NF draw sequences are global mutable state — racing domains over
    them would corrupt the schedule, not just reorder it).  Organic NF
    behaviour, including raising NFs, is fine — containment is per-shard
    and health broadcasts are mutex-protected.

    Armed observability runs domain-local: the plan's sink was
    {!Sb_obs.Sink.split} into per-shard children at {!Sharded.create}, each
    domain records only into its own child (no atomics on the hot path —
    the single-branch unarmed contract holds per domain), and after the
    join the executor folds mesh telemetry into the children
    ([speedybox_mesh_*] steering-prescan time, misdirected src→dst
    counters, queueing-delay and batch-fill histograms; [speedybox_ring_*]
    push/pop/spin/park counts and occupancy high-water from
    {!Shard_ring.stats}) and recomputes the parent via
    {!Sharded.merge_obs} — merged counters are bit-identical to the
    deterministic executor's, modulo those parallel-only families. *)

val run_trace :
  ?burst:int ->
  Sharded.t ->
  Sb_packet.Packet.t list ->
  Speedybox.Runtime.run_result
(** [run_trace ~burst t packets] processes the trace across one domain per
    shard — shard 0 on the calling thread — in batches of [burst] (default
    {!Speedybox.Runtime.default_burst}).
    @raise Invalid_argument when [burst < 1] or when the plan carries an
    injector. *)
