open Speedybox

let ring_capacity = 8

(* Batches in flight per (src, dst) pair: [ring_capacity] in the data
   ring, one open at the producer, one being processed at the consumer.
   Returning a batch to its free ring therefore never blocks. *)
let pool_capacity = ring_capacity + 2

(* A mesh transfer unit: up to [burst] pointers to pristine trace
   originals.  The receiving shard copies them into its own scratch pool
   before processing — the copy the old feeder did serially now happens in
   parallel on the consuming domain, and no allocation happens per batch:
   buffers recycle over the free rings for the whole run.  [enq_t] stamps
   the wall-clock enqueue instant when the sink is armed, feeding the
   consumer's queueing-delay histogram. *)
type batch = { pkts : Sb_packet.Packet.t array; mutable len : int; mutable enq_t : float }

let dummy_batch = { pkts = [||]; len = 0; enq_t = 0. }

(* Per-worker mesh telemetry: plain fields written by exactly one domain
   during the run and folded into that shard's child registry after the
   join (armed sinks only — unarmed runs never touch these). *)
type wstats = {
  mutable scan_s : float;  (* wall-clock seconds inside the steering prescan *)
  misdirected : int array;  (* packets this worker steered to each other shard *)
  mutable spins : int;  (* cpu_relax iterations while pushing/acquiring *)
  queue_delay_us : Sb_obs.Histogram.t;  (* batch enqueue-to-drain delay *)
  batch_fill : Sb_obs.Histogram.t;  (* drained batch sizes *)
}

let run_trace ?(burst = Runtime.default_burst) t packets =
  if burst < 1 then invalid_arg "Parallel_exec.run_trace: burst must be positive";
  let cfg = Sharded.config t in
  if cfg.Runtime.injector <> None then
    invalid_arg
      "Parallel_exec.run_trace: fault injection requires the deterministic executor \
       (injector draw sequences are global mutable state)";
  let n = Sharded.shard_count t in
  if n = 1 then Sharded.run_trace ~burst t packets
  else begin
    (* An armed sink was split into per-domain children at plan creation;
       each worker records into its own child only, so the hot path stays
       free of cross-domain writes and the single-branch unarmed contract
       holds per domain. *)
    let armed = Sb_obs.Sink.armed cfg.Runtime.obs in
    let originals = Array.of_list packets in
    let total = Array.length originals in
    let filler = Sb_packet.Packet.scratch () in
    (* The N x N mesh: [data.(src).(dst)] carries full batches from the
       domain that scanned them to the shard that owns them ([src = dst]
       for a slice's home-shard packets — one uniform path keeps buffering
       bounded by the pool, wherever the packets came from);
       [free.(src).(dst)] carries empty batches back.  Each ring has
       exactly one pushing and one popping domain. *)
    let mk_data () = Shard_ring.create ~capacity:ring_capacity ~dummy:dummy_batch in
    let data = Array.init n (fun _ -> Array.init n (fun _ -> mk_data ())) in
    let free =
      Array.init n (fun _ ->
          Array.init n (fun _ ->
              let r = Shard_ring.create ~capacity:pool_capacity ~dummy:dummy_batch in
              for _ = 1 to pool_capacity do
                if not
                     (Shard_ring.try_push r
                        { pkts = Array.make burst filler; len = 0; enq_t = 0. })
                then assert false
              done;
              r))
    in
    let accs =
      Array.init n (fun _ -> Runtime.Acc.create ~fid_bits:cfg.Runtime.fid_bits ())
    in
    let wstats =
      Array.init n (fun _ ->
          {
            scan_s = 0.;
            misdirected = Array.make n 0;
            spins = 0;
            queue_delay_us = Sb_obs.Histogram.create ();
            batch_fill = Sb_obs.Histogram.create ();
          })
    in
    let store = cfg.Runtime.state in
    let sync_state = Sb_state.Store.has_global store && Sb_state.Store.shards store = n in
    let worker d =
      let rt = Sharded.runtime t d in
      (* This shard's state-store replica: flushed (own contributions
         published, other shards' cached view refreshed) at batch
         boundaries only — single-writer atomics on a cold path, nothing
         on the per-packet path. *)
      let state_replica = if sync_state then Some (Sb_state.Store.replica store d) else None in
      let acc = accs.(d) in
      let ws = wstats.(d) in
      (* This domain's slice of the trace: it steers these packets itself,
         keeping the home-shard ones and exchanging the rest — there is no
         central feeder to serialise behind. *)
      let lo = total * d / n and hi = total * (d + 1) / n in
      let scratch = Array.init burst (fun _ -> Sb_packet.Packet.scratch ()) in
      let outbox = Array.make n dummy_batch in
      let cpos = ref 0 in
      (* No steering bookkeeping here: the plan's directory and counters
         are plain single-threaded tables, replayed sequentially by
         [Sharded.absorb_parallel_trace] after the join.  That keeps them
         bit-identical to the deterministic executor (including under
         cross-shard fid collisions, which no per-worker note merge can
         order) and keeps the parallel hot path lean. *)
      let process_batch src b =
        (* Health broadcasts from sibling shards converge at batch
           boundaries; so do global state-cell contributions.  Mid-batch,
           a global read is a locally-consistent lower bound (own live
           contribution plus the others as of this flush): a cross-shard
           threshold fires within a batch of where the deterministic
           executor fires it, still exactly once per flow, and the
           post-join merge makes the final merged values exact. *)
        Sharded.drain_control t d;
        (match state_replica with Some r -> Sb_state.Store.flush r | None -> ());
        let len = b.len in
        if armed then begin
          Sb_obs.Histogram.observe ws.queue_delay_us
            ((Unix.gettimeofday () -. b.enq_t) *. 1e6);
          Sb_obs.Histogram.observe_int ws.batch_fill len
        end;
        for k = 0 to len - 1 do
          Sb_packet.Packet.copy_into ~src:b.pkts.(k) ~dst:scratch.(k)
        done;
        Runtime.process_burst_into rt scratch ~off:0 ~len (fun k out ->
            Runtime.Acc.consume acc b.pkts.(k) out);
        b.len <- 0;
        if not (Shard_ring.try_push free.(src).(d) b) then assert false
      in
      (* One step of in-order consumption: sources drain in slice order
         (ring [src] fully, then [src+1], ...), which is what keeps a
         flow's packets in global trace order even when they arrive from
         different slices.  [blocking] only once this domain has nothing
         left to scan. *)
      let consume_step ~blocking =
        if !cpos >= n then false
        else begin
          let src = !cpos in
          let ring = data.(src).(d) in
          match Shard_ring.try_pop ring with
          | Some b ->
              process_batch src b;
              true
          | None ->
              if Shard_ring.closed_and_drained ring then begin
                incr cpos;
                true
              end
              else if blocking then begin
                (match Shard_ring.pop ring with
                | Some b -> process_batch src b
                | None -> incr cpos);
                true
              end
              else false
        end
      in
      (* A full peer ring (or exhausted free pool) is relieved by
         consuming our own input; when there is nothing consumable either
         we SPIN, we never park while scanning.  Progress is guaranteed
         for spinners: take the minimal consume position [m] over all
         domains — some blocked domain sits at [m] with a full or closing
         inbound ring [m -> c], and because every spinner re-runs
         [consume_step] each iteration, that domain consumes.  Parking
         would break exactly this argument: a producer parked on a full
         ring is not re-checking its own inbox, and the peer wake-up for
         that inbox goes to consumer-side parkers only — two domains each
         parked pushing into the other's full ring deadlock (observed on
         bursty per-flow traces; the slice-order constraint forbids the
         obvious escape of draining a later source early). *)
      let rec push_data ring b =
        if armed then b.enq_t <- Unix.gettimeofday ();
        if not (Shard_ring.try_push ring b) then begin
          if not (consume_step ~blocking:false) then begin
            ws.spins <- ws.spins + 1;
            Domain.cpu_relax ()
          end;
          push_data ring b
        end
      in
      let rec acquire_batch ring =
        match Shard_ring.try_pop ring with
        | Some b -> b
        | None ->
            if not (consume_step ~blocking:false) then begin
              ws.spins <- ws.spins + 1;
              Domain.cpu_relax ()
            end;
            acquire_batch ring
      in
      let scan_pos = ref lo in
      let scan_chunk budget =
        let remaining = ref budget in
        while !remaining > 0 && !scan_pos < hi do
          let p = originals.(!scan_pos) in
          let s = Sharded.shard_of_packet t p in
          if armed && s <> d then ws.misdirected.(s) <- ws.misdirected.(s) + 1;
          let ob =
            if outbox.(s) == dummy_batch then begin
              let b = acquire_batch free.(d).(s) in
              outbox.(s) <- b;
              b
            end
            else outbox.(s)
          in
          ob.pkts.(ob.len) <- p;
          ob.len <- ob.len + 1;
          if ob.len = burst then begin
            outbox.(s) <- dummy_batch;
            push_data data.(d).(s) ob
          end;
          incr scan_pos;
          decr remaining
        done
      in
      while !scan_pos < hi do
        if armed then begin
          let t0 = Unix.gettimeofday () in
          scan_chunk (4 * burst);
          ws.scan_s <- ws.scan_s +. (Unix.gettimeofday () -. t0)
        end
        else scan_chunk (4 * burst);
        ignore (consume_step ~blocking:false : bool)
      done;
      (* Flush partial batches and close this domain's outgoing rings —
         close is the termination signal; no in-band sentinel. *)
      for s = 0 to n - 1 do
        let ob = outbox.(s) in
        if ob != dummy_batch then begin
          outbox.(s) <- dummy_batch;
          if ob.len > 0 then push_data data.(d).(s) ob
        end;
        Shard_ring.close data.(d).(s)
      done;
      while !cpos < n do
        ignore (consume_step ~blocking:true : bool)
      done;
      Sharded.drain_control t d
    in
    (* Shard 0 runs on the calling thread: n shards cost n domains, not
       n + 1. *)
    let domains = Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    Array.iter Domain.join domains;
    (* Workers have stopped: absorb any broadcast still queued (a fault on
       one shard's final batch), so health converges across shards. *)
    for s = 0 to n - 1 do
      Sharded.drain_control t s
    done;
    (* Join gives the happens-before edge that makes every worker's
       accumulator safely readable here; the steering tables were never
       shared at all — replay them now, in trace order.  One final merge
       round converges every replica's view of the global cells, so
       post-run reads ([Report]'s global-state section, NF accessors) are
       exact. *)
    if sync_state then Sb_state.Store.merge_round store;
    Sharded.absorb_parallel_trace t originals;
    let merged = accs.(0) in
    for s = 1 to n - 1 do
      Runtime.Acc.absorb merged accs.(s)
    done;
    let result = Runtime.Acc.result merged in
    if armed then begin
      (* Fold the mesh and ring telemetry into each shard's child registry
         — after the join (the counters are owner-written plain fields)
         and after the last packet tick, so periodic snapshots never
         contain these wall-clock-dependent families. *)
      for d = 0 to n - 1 do
        match Sb_obs.Sink.metrics (Sharded.obs_child t d) with
        | None -> ()
        | Some m ->
            let chain_label = ("chain", Chain.name (Runtime.chain (Sharded.runtime t d))) in
            let shard_labels = [ chain_label; ("shard", string_of_int d) ] in
            let ws = wstats.(d) in
            for s = 0 to n - 1 do
              if s <> d && ws.misdirected.(s) > 0 then
                Sb_obs.Metrics.Counter.add
                  (Sb_obs.Metrics.counter m
                     ~help:"Packets a scanning domain steered to another shard"
                     ~labels:
                       [ chain_label; ("src", string_of_int d); ("dst", string_of_int s) ]
                     "speedybox_mesh_misdirected_total")
                  ws.misdirected.(s)
            done;
            Sb_obs.Metrics.Gauge.set
              (Sb_obs.Metrics.gauge m
                 ~help:"Wall-clock microseconds this domain spent in the steering prescan"
                 ~labels:shard_labels "speedybox_mesh_scan_us")
              (ws.scan_s *. 1e6);
            Sb_obs.Metrics.Counter.add
              (Sb_obs.Metrics.counter m
                 ~help:"cpu_relax iterations while pushing to or acquiring from the mesh"
                 ~labels:shard_labels "speedybox_mesh_spins_total")
              ws.spins;
            Sb_obs.Histogram.merge_into
              (Sb_obs.Metrics.histogram m
                 ~help:"Batch enqueue-to-drain wall-clock delay in microseconds"
                 ~labels:shard_labels "speedybox_mesh_queue_delay_us")
              ws.queue_delay_us;
            Sb_obs.Histogram.merge_into
              (Sb_obs.Metrics.histogram m
                 ~help:"Packets per drained mesh batch" ~labels:shard_labels
                 "speedybox_mesh_batch_fill")
              ws.batch_fill;
            (* Inbound ring telemetry, aggregated over sources: shard [d]
               consumes rings [src -> d]. *)
            let pushes = ref 0
            and pops = ref 0
            and spins = ref 0
            and parks = ref 0
            and hw = ref 0 in
            for src = 0 to n - 1 do
              let st = Shard_ring.stats data.(src).(d) in
              pushes := !pushes + st.Shard_ring.pushes;
              pops := !pops + st.Shard_ring.pops;
              spins := !spins + st.Shard_ring.push_spins + st.Shard_ring.pop_spins;
              parks := !parks + st.Shard_ring.push_parks + st.Shard_ring.pop_parks;
              if st.Shard_ring.highwater > !hw then hw := st.Shard_ring.highwater
            done;
            let c name help v =
              Sb_obs.Metrics.Counter.add
                (Sb_obs.Metrics.counter m ~help ~labels:shard_labels name) v
            in
            c "speedybox_ring_pushes_total" "Batches pushed into this shard's inbound rings"
              !pushes;
            c "speedybox_ring_pops_total" "Batches drained from this shard's inbound rings"
              !pops;
            c "speedybox_ring_spins_total"
              "cpu_relax iterations inside blocking ring ops on this shard's inbound rings"
              !spins;
            c "speedybox_ring_parks_total"
              "Times a side parked on this shard's inbound rings" !parks;
            Sb_obs.Metrics.Gauge.set
              (Sb_obs.Metrics.gauge m
                 ~help:"Highest occupancy observed across this shard's inbound rings"
                 ~merge:Sb_obs.Metrics.Max ~labels:shard_labels
                 "speedybox_ring_occupancy_highwater")
              (float_of_int !hw)
      done;
      Sharded.finish_obs t result;
      Sharded.merge_obs t
    end;
    result
  end
