open Speedybox

(* A ring entry: pristine originals (for flow-time keying) alongside the
   copies the worker will mutate, both owned by the receiving shard once
   pushed.  [Stop] ends the worker's loop. *)
type job = Batch of Sb_packet.Packet.t array * Sb_packet.Packet.t array | Stop

let ring_capacity = 8

let run_trace ?(burst = Runtime.default_burst) t packets =
  if burst < 1 then invalid_arg "Parallel_exec.run_trace: burst must be positive";
  let cfg = Sharded.config t in
  if cfg.Runtime.injector <> None then
    invalid_arg
      "Parallel_exec.run_trace: fault injection requires the deterministic executor \
       (injector draw sequences are global mutable state)";
  if Sb_obs.Sink.armed cfg.Runtime.obs then
    invalid_arg
      "Parallel_exec.run_trace: observability sinks are unsynchronised; use the \
       deterministic executor or a disarmed sink";
  let n = Sharded.shard_count t in
  if n = 1 then Sharded.run_trace ~burst t packets
  else begin
    let rings = Array.init n (fun _ -> Shard_ring.create ~capacity:ring_capacity) in
    let accs =
      Array.init n (fun _ -> Runtime.Acc.create ~fid_bits:cfg.Runtime.fid_bits ())
    in
    let workers =
      Array.init n (fun s ->
          Domain.spawn (fun () ->
              let rt = Sharded.runtime t s in
              let acc = accs.(s) in
              let rec loop () =
                match Shard_ring.pop rings.(s) with
                | Stop -> ()
                | Batch (copies, originals) ->
                    (* Health broadcasts from sibling shards converge at
                       batch boundaries. *)
                    Sharded.drain_control t s;
                    Runtime.process_burst_into rt copies ~off:0
                      ~len:(Array.length copies) (fun k out ->
                        Runtime.Acc.consume acc originals.(k) out);
                    loop ()
              in
              loop ()))
    in
    (* The feeder (this thread) steers the trace into per-shard pending
       buffers and ships each as a batch when it fills; a full ring blocks
       the feeder — backpressure, never packet loss. *)
    let pending = Array.make n [] in
    let pend_len = Array.make n 0 in
    let flush s =
      if pend_len.(s) > 0 then begin
        let originals = Array.of_list (List.rev pending.(s)) in
        pending.(s) <- [];
        pend_len.(s) <- 0;
        let copies = Array.map Sb_packet.Packet.copy originals in
        Shard_ring.push rings.(s) (Batch (copies, originals))
      end
    in
    List.iter
      (fun p ->
        let s = Sharded.shard_of_packet t p in
        Sharded.note_arrival t s p;
        pending.(s) <- p :: pending.(s);
        pend_len.(s) <- pend_len.(s) + 1;
        if pend_len.(s) >= burst then flush s;
        Sharded.prune_if_final t p)
      packets;
    for s = 0 to n - 1 do
      flush s;
      Shard_ring.push rings.(s) Stop
    done;
    Array.iter Domain.join workers;
    (* Workers have stopped: absorb any broadcast still queued (a fault on
       one shard's final batch), so health converges across shards. *)
    for s = 0 to n - 1 do
      Sharded.drain_control t s
    done;
    (* Join gives the happens-before edge that makes every worker's
       accumulator safely readable here. *)
    let total = accs.(0) in
    for s = 1 to n - 1 do
      Runtime.Acc.absorb total accs.(s)
    done;
    Runtime.Acc.result total
  end
