(** The sharded runtime: N independent {!Speedybox.Runtime.t}s behind a
    symmetric-flow-hash steering function.

    Each shard owns a full runtime — its own Global/Local MATs, conntrack,
    Event Table, fault supervisor — over its own chain instance, so
    per-flow state needs no locking: steering ({!Steer}) sends both
    directions of a connection to one shard.  The two genuinely global
    concerns travel over the {!Control} inboxes: NF health (faults
    broadcast so chain-wide thresholds keep meaning chain-wide) and
    operator control events ({!broadcast}).

    Two executors share one plan.  {!run_trace} here is the
    {e deterministic} one: single-threaded, packets processed in global
    arrival order with maximal same-shard stretches batched through the
    burst path, control messages absorbed before every stretch.  Its
    results are bit-exact with an unsharded {!Speedybox.Runtime.run_trace}
    over the same trace (same per-packet outputs, aggregates, NF state and
    fault attribution) whenever the chain's cross-flow state is per-flow —
    the property the differential tests pin down.  {!Parallel_exec} runs
    the same plan across OCaml domains for wall-clock speedup.

    Shard failure or load imbalance is handled by explicit flow migration
    ({!migrate_flow}, {!drain_shard}, {!rebalance}): the flow's conntrack
    entries (both directions) and — when no events are armed on it — its
    consolidated rule move to the new shard; event-armed flows tear down
    and re-record on their new home, and quarantined flows move by
    steering alone (no rule is resurrected).  Migrations are logged to the
    flow timeline as [Migrated]. *)

type t

val create : ?shards:int -> Speedybox.Runtime.config -> (int -> Speedybox.Chain.t) -> t
(** [create ~shards cfg build_chain] builds [shards] (default 1) runtimes,
    each over its own [build_chain i].  The config is shared — including
    the injector (one global fault schedule, drawn in arrival order by the
    deterministic executor).  An armed observability sink on a multi-shard
    plan is {!Sb_obs.Sink.split} into per-shard children — shard [i]
    records into its own registry/tracer/timeline, and both executors
    recompute the parent sink from the children at end of run
    ({!merge_obs}), so reading [cfg.obs] after a run sees merged totals.
    @raise Invalid_argument when [shards < 1]. *)

val shard_count : t -> int

val runtime : t -> int -> Speedybox.Runtime.t
(** Shard [i]'s runtime, for inspection (supervisor counters, MAT
    occupancy, chain state). *)

val shard_of_packet : t -> Sb_packet.Packet.t -> int
(** Where this packet steers right now: the migration override when its
    flow has one, the symmetric hash otherwise. *)

val run_trace :
  ?on_output:(Sb_packet.Packet.t -> Speedybox.Runtime.output -> unit) ->
  ?burst:int ->
  t ->
  Sb_packet.Packet.t list ->
  Speedybox.Runtime.run_result
(** The deterministic executor: global arrival order, same-shard stretches
    (capped at [burst], default {!Speedybox.Runtime.default_burst}) batched
    through {!Speedybox.Runtime.process_burst_into}, control inboxes
    drained before each stretch and once more at end of run (so every
    shard's health table converges).  [on_output] fires per packet in global
    order.  With one shard this delegates to the unsharded burst path.
    @raise Invalid_argument when [burst < 1]. *)

val broadcast : t -> (int -> Speedybox.Runtime.t -> unit) -> unit
(** Queue a control closure to every shard (applied to each shard's
    runtime at its next drain — before its next stretch under the
    deterministic executor).  The carrier for chain-wide NF control
    events: backend death/revival, threshold changes. *)

val migrate_flow : t -> fid:Sb_flow.Fid.t -> dest:int -> bool
(** [migrate_flow t ~fid ~dest] hands the flow — and its reverse
    direction — to shard [dest]: conntrack entries move, the consolidated
    rule transplants when the flow has no armed events (otherwise it tears
    down to re-record), steering overrides point at [dest], and the
    timeline logs [Migrated].  False when the flow is unknown or already
    on [dest].
    @raise Invalid_argument when [dest] is out of range. *)

val drain_shard : t -> from:int -> dest:int -> int
(** Migrate every flow owned by shard [from] to [dest] (evacuation before
    taking a shard out); returns the number of flows moved. *)

val rebalance : t -> int
(** Even out directory ownership by migrating flows from the most- to the
    least-loaded shard until the spread stops improving; returns the
    number of flows moved. *)

val stats : t -> Speedybox.Report.shard_row list
(** Per-shard end-of-run figures, ready for
    {!Speedybox.Report.shard_summary}. *)

(** {2 Executor plumbing}

    Hooks {!Parallel_exec} drives the shared plan through; not part of the
    user-facing API. *)

val config : t -> Speedybox.Runtime.config

val obs_child : t -> int -> Sb_obs.Sink.t
(** Shard [i]'s child sink (the parent itself when the plan is single-shard
    or disarmed).  The parallel executor folds its post-join mesh/ring
    telemetry into these before merging. *)

val merge_obs : t -> unit
(** Recompute the parent sink ([config t].obs) from the per-shard children
    ({!Sb_obs.Sink.merge}): call after a run — both executors already do —
    or between runs for a consistent point-in-time reading (e.g. after
    {!migrate_flow}, whose timeline entry lands in the source shard's
    child).  Idempotent; a no-op on single-shard or disarmed plans. *)

val finish_obs : t -> Speedybox.Runtime.run_result -> unit
(** Write the end-of-run gauges (per-shard packets/flows/rules, plus each
    shard's contribution to the run-level rules/events/non-flow series)
    into the child registries.  Executors call this before {!merge_obs}. *)

val drain_control : t -> int -> unit
(** Absorb every control message queued for shard [i]. *)

val note_arrival : t -> int -> Sb_packet.Packet.t -> unit
(** Record that a packet was steered to shard [i]: per-shard counters, the
    flow directory, and the simulated clock. *)

val prune_if_final : t -> Sb_packet.Packet.t -> unit
(** Drop both directions' steering state after a FIN/RST packet has been
    handed off for processing. *)

val absorb_parallel_trace : t -> Sb_packet.Packet.t array -> unit
(** Replay the whole trace's steering bookkeeping ({!note_arrival} then
    {!prune_if_final} per packet, in trace order) after a parallel run's
    [Domain.join].  Running the deterministic executor's own bookkeeping
    sequentially is what keeps counters, clock and directory bit-identical
    to a deterministic run even when two distinct flows on different
    shards collide on one fid — no per-worker note merge can order such
    interleavings, and it also keeps bookkeeping off the parallel hot
    path. *)
