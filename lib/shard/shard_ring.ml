(* One side of the ring: the cursor this side owns plus its cached view of
   the peer's cursor.  Grouping them by OWNER (not by cursor) keeps each
   domain's stores on memory it alone writes; the pad words inflate the
   record past a cache line so the two sides' blocks cannot share one.
   OCaml gives no placement control, so this (plus allocating a spacer
   between the sides) is best-effort padding — the structure, not the
   layout, is what the SPSC protocol relies on. *)
type side = {
  pos : int Atomic.t;  (* owned cursor: monotonically increasing *)
  mutable peer_cache : int;  (* peer cursor lower bound, refreshed on demand *)
  (* Telemetry, owner-written plain fields (no atomics — each is stored by
     exactly one domain; readers wait for quiescence, see [stats]). *)
  mutable ops : int;  (* successful pushes / pops (items) *)
  mutable spin_iters : int;  (* cpu_relax iterations in blocking ops *)
  mutable parks : int;  (* times this side parked on the condvar *)
  mutable highwater : int;  (* producer side: max occupancy lower bound seen *)
  mutable pad0 : int;
  mutable pad1 : int;
}

type 'a t = {
  slots : 'a array;
  mask : int;
  dummy : 'a;
  prod : side;  (* [prod.pos] = next slot to write, owned by the producer *)
  cons : side;  (* [cons.pos] = next slot to read, owned by the consumer *)
  closed : bool Atomic.t;
  (* Parking: a side that exhausted its spin budget raises its own flag
     and waits on [cond]; the peer broadcasts only when it sees the flag,
     so the uncontended path never touches the mutex.  One flag per side —
     with a shared flag, a consumer clearing it on wake-up would erase a
     concurrently-parking producer's flag and strand it. *)
  prod_parked : bool Atomic.t;
  cons_parked : bool Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
}

let spin_budget = 128

let make_side () =
  { pos = Atomic.make 0; peer_cache = 0; ops = 0; spin_iters = 0; parks = 0;
    highwater = 0; pad0 = 0; pad1 = 0 }

(* Minor-heap allocation is a bump pointer, so an ignored allocation
   between the two sides spaces their blocks at least a line apart. *)
let spacer () = Sys.opaque_identity (Array.make 16 0)

let create ~capacity ~dummy =
  if capacity < 1 then invalid_arg "Shard_ring.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let prod = make_side () in
  ignore (spacer ());
  let cons = make_side () in
  ignore (spacer ());
  {
    slots = Array.make !cap dummy;
    mask = !cap - 1;
    dummy;
    prod;
    cons;
    closed = Atomic.make false;
    prod_parked = Atomic.make false;
    cons_parked = Atomic.make false;
    mutex = Mutex.create ();
    cond = Condition.create ();
  }

let capacity t = t.mask + 1

let length t = Atomic.get t.prod.pos - Atomic.get t.cons.pos

let is_closed t = Atomic.get t.closed

(* Wake the peer if its park flag is up.  Taking the mutex orders the
   broadcast after the peer's re-check-then-wait, so the wakeup cannot be
   lost. *)
let wake t flag =
  if Atomic.get flag then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

(* Park until [ready] holds.  The flag is set and the condition re-checked
   under the mutex: the peer either observes the flag (and broadcasts
   under the same mutex, hence after our wait begins) or its state change
   is visible to our re-check. *)
let park t flag ready =
  Mutex.lock t.mutex;
  Atomic.set flag true;
  if not (ready ()) then Condition.wait t.cond t.mutex;
  Atomic.set flag false;
  Mutex.unlock t.mutex

let closed_for_push () = invalid_arg "Shard_ring: push to a closed ring"

let try_push t v =
  if Atomic.get t.closed then closed_for_push ();
  let tail = Atomic.get t.prod.pos in
  let cap = t.mask + 1 in
  if tail - t.prod.peer_cache >= cap then t.prod.peer_cache <- Atomic.get t.cons.pos;
  if tail - t.prod.peer_cache >= cap then false
  else begin
    t.slots.(tail land t.mask) <- v;
    Atomic.set t.prod.pos (tail + 1);
    t.prod.ops <- t.prod.ops + 1;
    let occ = tail + 1 - t.prod.peer_cache in
    if occ > t.prod.highwater then t.prod.highwater <- occ;
    wake t t.cons_parked;
    true
  end

let push t v =
  let spins = ref spin_budget in
  while not (try_push t v) do
    if !spins > 0 then begin
      decr spins;
      t.prod.spin_iters <- t.prod.spin_iters + 1;
      Domain.cpu_relax ()
    end
    else begin
      t.prod.parks <- t.prod.parks + 1;
      park t t.prod_parked (fun () ->
          Atomic.get t.prod.pos - Atomic.get t.cons.pos < t.mask + 1);
      spins := spin_budget
    end
  done

let push_batch t src ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Array.length src then
    invalid_arg "Shard_ring.push_batch";
  if Atomic.get t.closed then closed_for_push ();
  let tail = Atomic.get t.prod.pos in
  let cap = t.mask + 1 in
  if tail + len - t.prod.peer_cache > cap then t.prod.peer_cache <- Atomic.get t.cons.pos;
  let room = cap - (tail - t.prod.peer_cache) in
  let n = if len < room then len else room in
  if n > 0 then begin
    for i = 0 to n - 1 do
      t.slots.((tail + i) land t.mask) <- src.(pos + i)
    done;
    Atomic.set t.prod.pos (tail + n);
    t.prod.ops <- t.prod.ops + n;
    let occ = tail + n - t.prod.peer_cache in
    if occ > t.prod.highwater then t.prod.highwater <- occ;
    wake t t.cons_parked
  end;
  n

let try_pop t =
  let head = Atomic.get t.cons.pos in
  if head = t.cons.peer_cache then t.cons.peer_cache <- Atomic.get t.prod.pos;
  if head = t.cons.peer_cache then None
  else begin
    let i = head land t.mask in
    let v = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.cons.pos (head + 1);
    t.cons.ops <- t.cons.ops + 1;
    wake t t.prod_parked;
    Some v
  end

(* Check closed BEFORE re-reading the producer cursor: the producer's last
   push precedes its close, so close-then-still-empty means drained. *)
let closed_and_drained t =
  Atomic.get t.closed && Atomic.get t.cons.pos = Atomic.get t.prod.pos

let pop t =
  let rec go spins =
    match try_pop t with
    | Some _ as v -> v
    | None ->
        if closed_and_drained t then None
        else if spins > 0 then begin
          t.cons.spin_iters <- t.cons.spin_iters + 1;
          Domain.cpu_relax ();
          go (spins - 1)
        end
        else begin
          t.cons.parks <- t.cons.parks + 1;
          park t t.cons_parked (fun () ->
              Atomic.get t.closed
              || Atomic.get t.cons.pos <> Atomic.get t.prod.pos);
          go spin_budget
        end
  in
  go spin_budget

let pop_batch t dst =
  let head = Atomic.get t.cons.pos in
  if head = t.cons.peer_cache then t.cons.peer_cache <- Atomic.get t.prod.pos;
  let avail = t.cons.peer_cache - head in
  let n = if Array.length dst < avail then Array.length dst else avail in
  if n > 0 then begin
    for i = 0 to n - 1 do
      let s = (head + i) land t.mask in
      dst.(i) <- t.slots.(s);
      t.slots.(s) <- t.dummy
    done;
    Atomic.set t.cons.pos (head + n);
    t.cons.ops <- t.cons.ops + n;
    wake t t.prod_parked
  end;
  n

type stats = {
  pushes : int;
  pops : int;
  push_spins : int;
  pop_spins : int;
  push_parks : int;
  pop_parks : int;
  highwater : int;
}

(* Plain reads of owner-written fields: exact only after both sides have
   quiesced (the parallel executor reads them after [Domain.join], which
   publishes every worker store). *)
let stats t =
  {
    pushes = t.prod.ops;
    pops = t.cons.ops;
    push_spins = t.prod.spin_iters;
    pop_spins = t.cons.spin_iters;
    push_parks = t.prod.parks;
    pop_parks = t.cons.parks;
    highwater = t.prod.highwater;
  }

let close t =
  Atomic.set t.closed true;
  (* Unconditional broadcast: close is rare and must never strand a
     consumer that was between its flag set and its wait. *)
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex
