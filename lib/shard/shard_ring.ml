type 'a t = {
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  slots : 'a option array;
  mutable head : int;  (* next pop *)
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Shard_ring.create: capacity must be positive";
  {
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    slots = Array.make capacity None;
    head = 0;
    len = 0;
  }

let push t v =
  Mutex.lock t.lock;
  let cap = Array.length t.slots in
  while t.len = cap do
    Condition.wait t.not_full t.lock
  done;
  t.slots.((t.head + t.len) mod cap) <- Some v;
  t.len <- t.len + 1;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  while t.len = 0 do
    Condition.wait t.not_empty t.lock
  done;
  let v =
    match t.slots.(t.head) with
    | Some v -> v
    | None -> assert false (* len > 0 ⇒ the head slot is filled *)
  in
  t.slots.(t.head) <- None;
  t.head <- (t.head + 1) mod Array.length t.slots;
  t.len <- t.len - 1;
  Condition.signal t.not_full;
  Mutex.unlock t.lock;
  v

let length t =
  Mutex.lock t.lock;
  let n = t.len in
  Mutex.unlock t.lock;
  n
