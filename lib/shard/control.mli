(** The cross-shard control plane: a per-shard message inbox.

    Per-flow state needs no coordination (steering co-locates it), but two
    things are genuinely global and must reach every shard: NF health
    (a fault on one shard's packet degrades the NF everywhere — thresholds
    are chain-wide, not per-shard) and operator/control events that rewrite
    chain-wide NF state (a Maglev backend dying, a DoS-guard threshold
    change).  Both travel as broadcast messages; each shard drains its
    inbox before processing its next stretch of packets.

    Inboxes are mutex-protected, so the same queue serves both executors:
    the deterministic scheduler drains synchronously (messages are
    absorbed before the very next packet, which is what keeps sharded
    execution bit-exact with unsharded), the parallel executor drains at
    batch boundaries (eventual, which is all a real NUMA deployment gets
    anyway). *)

type msg =
  | Nf_fault of string
      (** NF [nf] faulted on the sending shard (already counted there);
          receivers advance their health view without re-counting. *)
  | Apply of (int -> Speedybox.Runtime.t -> unit)
      (** Run this closure against the receiving shard's runtime (shard
          index first) — the carrier for chain-wide control events. *)

type t

val create : shards:int -> t
(** @raise Invalid_argument when [shards < 1]. *)

val shards : t -> int

val post : t -> shard:int -> msg -> unit
(** Enqueue to one shard's inbox. *)

val broadcast : t -> ?from:int -> msg -> unit
(** Enqueue to every shard's inbox except [from] (default [-1]: all). *)

val drain : t -> shard:int -> (msg -> unit) -> int
(** Apply the handler to every queued message in arrival order, returning
    how many were absorbed.  Messages posted by the handler itself are
    left for the next drain.  An empty inbox costs one atomic load — no
    mutex — so executors can afford a drain at every batch boundary. *)

val absorbed : t -> shard:int -> int
(** Total messages this shard has drained so far. *)
