open Speedybox

type t = {
  cfg : Runtime.config;
  runtimes : Runtime.t array;
  (* Per-shard child sinks split off [cfg.obs] when it is armed and the
     plan is multi-shard (otherwise every slot aliases the parent): shard
     [i]'s runtime records into [obs_children.(i)] only — its own
     registry, tracer ring and timeline, no cross-domain writes — and the
     executors recompute the parent from the children at end of run
     ([merge_obs]). *)
  obs_children : Sb_obs.Sink.t array;
  control : Control.t;
  (* Steering state.  [overrides] redirects a migrated flow away from its
     hash home; [directory] remembers each flow's ingress tuple and owner
     so migration can find the state to move.  Both are touched only by
     the steering thread (the deterministic executor, or the parallel
     executor's feeder), never by shard workers. *)
  overrides : (int, int) Hashtbl.t;
  directory : (int, Sb_flow.Five_tuple.t * int) Hashtbl.t;
  steered : int array;  (* packets steered to each shard *)
  migrated_in : int array;
  migrated_out : int array;
  mutable now_us : float;  (* last steered packet's simulated clock *)
}

let create ?(shards = 1) cfg build_chain =
  if shards < 1 then invalid_arg "Sharded.create: shards must be positive";
  let control = Control.create ~shards in
  let obs_children =
    if shards > 1 && Sb_obs.Sink.armed cfg.Runtime.obs then
      Sb_obs.Sink.split cfg.Runtime.obs shards
    else Array.make shards cfg.Runtime.obs
  in
  let runtimes =
    Array.init shards (fun i ->
        Runtime.create { cfg with Runtime.obs = obs_children.(i) } (build_chain i))
  in
  (* The chains have now declared their cells.  A store sized for a
     different shard count would alias replicas across shards (or leave
     some unreachable) — reject it rather than partition state silently,
     which is the failure mode this subsystem exists to kill.  A store
     that stayed empty is fine at any size: nothing was declared against
     it, so nothing can be partitioned. *)
  let st = cfg.Runtime.state in
  if Sb_state.Store.cell_count st > 0 && Sb_state.Store.shards st <> shards then
    invalid_arg
      (Printf.sprintf
         "Sharded.create: state store sized for %d shard(s) but the deployment has %d \
          — create it with Store.create ~shards:%d"
         (Sb_state.Store.shards st) shards shards);
  (* Faults are chain-wide: whatever shard records one, every other shard
     must advance the NF's health before its next packet. *)
  Array.iteri
    (fun i rt ->
      Runtime.set_fault_listener rt (fun nf ->
          Control.broadcast control ~from:i (Control.Nf_fault nf)))
    runtimes;
  {
    cfg;
    runtimes;
    obs_children;
    control;
    overrides = Hashtbl.create 256;
    directory = Hashtbl.create 256;
    steered = Array.make shards 0;
    migrated_in = Array.make shards 0;
    migrated_out = Array.make shards 0;
    now_us = 0.;
  }

let shard_count t = Array.length t.runtimes

let runtime t i = t.runtimes.(i)

let config t = t.cfg

let obs_child t i = t.obs_children.(i)

(* Recompute the parent sink from the per-shard children (a no-op when the
   children alias the parent — disarmed, or a single shard).  Idempotent:
   the merge clears the parent first, so calling it after every run, or
   between runs to take a consistent reading, never double-counts. *)
let merge_obs t = Sb_obs.Sink.merge t.cfg.Runtime.obs t.obs_children

let fid_of t tuple = Sb_flow.Fid.of_tuple ~bits:t.cfg.Runtime.fid_bits tuple

let shard_of_tuple t tuple =
  let fid = fid_of t tuple in
  match Hashtbl.find_opt t.overrides fid with
  | Some s -> s
  | None -> Steer.shard_of_tuple ~shards:(Array.length t.runtimes) tuple

let shard_of_packet t packet =
  match Sb_flow.Five_tuple.of_packet_opt packet with
  | None -> 0
  | Some tuple -> shard_of_tuple t tuple

(* ---- Control plane ---- *)

let drain_control t s =
  ignore
    (Control.drain t.control ~shard:s (function
      | Control.Nf_fault nf -> Runtime.absorb_remote_fault t.runtimes.(s) ~nf
      | Control.Apply f -> f s t.runtimes.(s)))

let broadcast t f = Control.broadcast t.control (Control.Apply f)

(* ---- Steering bookkeeping ---- *)

(* Directory-only part of an arrival, separated so the post-burst
   sequential replay below can re-establish entries without
   double-counting [steered]. *)
let note_seen t s packet =
  match Sb_flow.Five_tuple.of_packet_opt packet with
  | None -> ()
  | Some tuple ->
      let fid = fid_of t tuple in
      if not (Hashtbl.mem t.directory fid) then Hashtbl.replace t.directory fid (tuple, s)

let note_arrival t s packet =
  t.steered.(s) <- t.steered.(s) + 1;
  t.now_us <- Sb_sim.Cycles.to_microseconds packet.Sb_packet.Packet.ingress_cycle;
  note_seen t s packet

(* After a FIN/RST packet has processed (the runtime tore the flow's rules
   and conntrack down), drop both directions' steering state too: a new
   connection reusing the tuple starts fresh at its hash home. *)
let prune_if_final t packet =
  match Sb_flow.Five_tuple.of_packet_opt packet with
  | Some tuple when tuple.Sb_flow.Five_tuple.proto = 6 ->
      let flags = Sb_packet.Packet.tcp_flags packet in
      if flags.Sb_packet.Tcp.Flags.fin || flags.Sb_packet.Tcp.Flags.rst then begin
        let fid = fid_of t tuple in
        let rfid = fid_of t (Sb_flow.Five_tuple.reverse tuple) in
        Hashtbl.remove t.directory fid;
        Hashtbl.remove t.directory rfid;
        Hashtbl.remove t.overrides fid;
        Hashtbl.remove t.overrides rfid
      end
  | Some _ | None -> ()

(* ---- Parallel-run bookkeeping ----

   The steering tables above are plain Hashtbls, touched only
   single-threaded.  The parallel executor's workers therefore never
   touch them: after [Domain.join] the main thread replays the trace's
   steering events here — the same code in the same order as the
   deterministic executor, so counters, clock and directory end
   bit-identical to a deterministic run.  (Per-worker net-state notes
   cannot achieve this: two distinct flows on different shards may
   collide on one fid, and no per-shard summary can recover how their
   arrivals and FINs interleaved in trace order.) *)

let absorb_parallel_trace t originals =
  Array.iter
    (fun p ->
      let s = shard_of_packet t p in
      note_arrival t s p;
      prune_if_final t p)
    originals

(* ---- Migration ---- *)

(* Migration events record into the SOURCE shard's child timeline (the
   shard that owned the flow when the event happened).  Recording into the
   parent would be lost at the next [merge_obs], which recomputes the
   parent from the children. *)
let obs_migrated t fid src dest =
  if Sb_obs.Sink.armed t.obs_children.(src) then
    match Sb_obs.Sink.timeline t.obs_children.(src) with
    | Some tl ->
        Sb_obs.Timeline.record tl ~fid ~ts_us:t.now_us
          ~detail:(Printf.sprintf "shard %d -> %d" src dest)
          Sb_obs.Timeline.Migrated
    | None -> ()

(* Move one direction's state.  Conntrack always moves; the consolidated
   rule transplants only when the flow has no armed events (the Event
   Table's registrations and closures live in the source chain and cannot
   follow), otherwise it tears down and the flow re-records on [dest]; a
   flow with no rule at all — quarantined, or not yet consolidated — moves
   by steering alone, deliberately NOT resurrecting anything. *)
let migrate_direction t ~src ~dest tuple fid =
  let src_rt = t.runtimes.(src) and dst_rt = t.runtimes.(dest) in
  (* Scope-aware state transplant, before the rule/record teardown below:
     the flow's per-flow store entries (counters, conntrack) move to the
     destination replica, so [dest]'s re-recording resumes from the same
     state the unsharded chain would hold.  Global and per-shard cells
     don't move — global contributions stay where they were earned (the
     merge sums them regardless of owner), per-shard cells are pinned by
     definition. *)
  if Sb_state.Store.shards t.cfg.Runtime.state > 1 then
    ignore (Sb_state.Store.transplant t.cfg.Runtime.state ~src ~dest tuple);
  (match Classifier.export_flow (Runtime.classifier src_rt) tuple with
  | Some st ->
      Classifier.adopt_flow (Runtime.classifier dst_rt) tuple st;
      Classifier.forget (Runtime.classifier src_rt) tuple
  | None -> ());
  (match Sb_mat.Global_mat.find (Runtime.global_mat src_rt) fid with
  | Some rule ->
      let armed =
        Sb_mat.Event_table.armed_count (Chain.events (Runtime.chain src_rt)) fid
      in
      (* A consolidated rule's state-function closures are bound to the
         SOURCE shard's NF instances.  With instance-local NF state that
         was harmless (the state stayed put and kept accruing at the
         source); with a shared store the per-flow entries just
         transplanted to [dest], so executing source-bound closures would
         resurrect stale entries in the drained replica and starve the
         transplanted ones.  Adopt only closure-free rules then — a rule
         with state functions tears down and re-records on [dest], where
         the rebuilt closures resume from the transplanted entries. *)
      let portable =
        Sb_state.Store.shards t.cfg.Runtime.state <= 1
        || Sb_mat.Global_mat.rule_batches rule = []
      in
      if armed = 0 && portable then
        Sb_mat.Global_mat.adopt (Runtime.global_mat dst_rt) fid rule;
      Chain.remove_flow (Runtime.chain src_rt) fid;
      Sb_mat.Global_mat.remove_flow (Runtime.global_mat src_rt) fid
  | None -> ());
  Hashtbl.replace t.overrides fid dest;
  (match Hashtbl.find_opt t.directory fid with
  | Some (tu, _) -> Hashtbl.replace t.directory fid (tu, dest)
  | None -> ());
  obs_migrated t fid src dest

let migrate_flow t ~fid ~dest =
  if dest < 0 || dest >= Array.length t.runtimes then
    invalid_arg "Sharded.migrate_flow: destination out of range";
  match Hashtbl.find_opt t.directory fid with
  | None -> false
  | Some (_, src) when src = dest -> false
  | Some (tuple, src) ->
      migrate_direction t ~src ~dest tuple fid;
      (* The connection's other direction has its own FID, conntrack key
         and (possibly) rule; it must follow or its packets would land on
         a shard whose state just left. *)
      let rtuple = Sb_flow.Five_tuple.reverse tuple in
      let rfid = fid_of t rtuple in
      if rfid <> fid then migrate_direction t ~src ~dest rtuple rfid;
      t.migrated_out.(src) <- t.migrated_out.(src) + 1;
      t.migrated_in.(dest) <- t.migrated_in.(dest) + 1;
      true

let drain_shard t ~from ~dest =
  if from = dest then invalid_arg "Sharded.drain_shard: from = dest";
  let fids =
    Hashtbl.fold (fun fid (_, s) acc -> if s = from then fid :: acc else acc) t.directory []
    |> List.sort Int.compare
  in
  List.fold_left (fun n fid -> if migrate_flow t ~fid ~dest then n + 1 else n) 0 fids

let ownership_counts t =
  let counts = Array.make (Array.length t.runtimes) 0 in
  Hashtbl.iter (fun _ (_, s) -> counts.(s) <- counts.(s) + 1) t.directory;
  counts

let spread counts =
  let hi = Array.fold_left max counts.(0) counts in
  let lo = Array.fold_left min counts.(0) counts in
  hi - lo

let rebalance t =
  let n = Array.length t.runtimes in
  if n < 2 then 0
  else begin
    let moved = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let counts = ownership_counts t in
      let hi = ref 0 and lo = ref 0 in
      Array.iteri
        (fun i c ->
          if c > counts.(!hi) then hi := i;
          if c < counts.(!lo) then lo := i)
        counts;
      if counts.(!hi) - counts.(!lo) <= 1 then continue_ := false
      else begin
        (* Smallest FID on the hot shard: deterministic, so rebalancing a
           given state always produces the same placement. *)
        let fid =
          Hashtbl.fold
            (fun fid (_, s) best -> if s = !hi && (best < 0 || fid < best) then fid else best)
            t.directory (-1)
        in
        let before = spread counts in
        if fid < 0 || not (migrate_flow t ~fid ~dest:!lo) then continue_ := false
        else begin
          incr moved;
          (* A migration moves one or two directory entries; stop when the
             spread stops shrinking (a 2-entry connection can't split). *)
          if spread (ownership_counts t) >= before then continue_ := false
        end
      end
    done;
    !moved
  end

(* ---- The deterministic executor ---- *)

(* End-of-run gauges, written into each shard's CHILD registry — never the
   parent, which the next [merge_obs] would wipe.  Per-shard series carry a
   [shard] label; the run-level gauges an unsharded run_trace would set
   become per-shard contributions under the same (chain-labelled) series,
   summed by the merge — so a merged sharded export totals exactly what the
   unsharded run reports.  The sentinel non-flow bucket is a whole-run
   figure and lands on child 0. *)
let finish_obs t (result : Runtime.run_result) =
  let flows = ownership_counts t in
  Array.iteri
    (fun i rt ->
      match Sb_obs.Sink.metrics t.obs_children.(i) with
      | None -> ()
      | Some m ->
          let chain_label = ("chain", Chain.name (Runtime.chain rt)) in
          let g name help v =
            Sb_obs.Metrics.Gauge.set
              (Sb_obs.Metrics.gauge m ~help
                 ~labels:[ chain_label; ("shard", string_of_int i) ]
                 name)
              (float_of_int v)
          in
          g "speedybox_shard_packets" "Packets steered to this shard" t.steered.(i);
          g "speedybox_shard_flows" "Flows owned by this shard" flows.(i);
          g "speedybox_shard_rules" "Consolidated rules installed on this shard"
            (Sb_mat.Global_mat.flow_count (Runtime.global_mat rt));
          let st = t.cfg.Runtime.state in
          if
            Sb_state.Store.cell_count st > 0
            && Sb_state.Store.shards st = Array.length t.runtimes
          then
            g "speedybox_state_flow_entries"
              "Live per-flow state-store entries on this shard"
              (Sb_state.Store.flow_entries (Sb_state.Store.replica st i));
          let run_level name help v =
            Sb_obs.Metrics.Gauge.set
              (Sb_obs.Metrics.gauge m ~help ~labels:[ chain_label ] name)
              v
          in
          run_level "speedybox_rules_installed" "Consolidated rules in the Global MAT"
            (float_of_int (Sb_mat.Global_mat.flow_count (Runtime.global_mat rt)));
          run_level "speedybox_events_armed" "Event Table conditions currently armed"
            (float_of_int
               (Sb_mat.Event_table.total_armed (Chain.events (Runtime.chain rt))));
          run_level "speedybox_state_global_events_armed"
            "Armed Event Table conditions reading global-scope state"
            (float_of_int
               (Sb_mat.Event_table.total_global_armed (Chain.events (Runtime.chain rt))));
          if i = 0 then begin
            (match
               Sb_flow.Flow_table.find result.Runtime.flow_time_us Runtime.no_flow_fid
             with
            | Some us ->
                run_level "speedybox_non_flow_time_us"
                  "Processing time spent on packets with no 5-tuple (non-TCP/UDP)" us
            | None -> ());
            (* Store-wide state figures are whole-run, like the non-flow
               bucket: one contribution on child 0, or the merge would
               multiply them by the shard count. *)
            let st = t.cfg.Runtime.state in
            let counts = Sb_state.Store.cell_counts st in
            let gs scope v =
              Sb_obs.Metrics.Gauge.set
                (Sb_obs.Metrics.gauge m ~help:"Declared state-store cells by scope"
                   ~labels:[ chain_label; ("scope", scope) ]
                   "speedybox_state_cells")
                (float_of_int v)
            in
            gs "per-flow" counts.Sb_state.Store.per_flow;
            gs "per-shard" counts.Sb_state.Store.per_shard;
            gs "global" counts.Sb_state.Store.global;
            Sb_obs.Metrics.Counter.add
              (Sb_obs.Metrics.counter m ~help:"Cross-shard state merge rounds run"
                 ~labels:[ chain_label ] "speedybox_state_merge_rounds_total")
              (Sb_state.Store.merge_rounds_delta st);
            let h_global =
              Sb_obs.Metrics.histogram m
                ~help:"Merged values of global-scope state cells"
                ~labels:[ chain_label; ("scope", "global") ]
                "speedybox_state_cell_value"
            in
            List.iter
              (fun (_, _, v) -> Sb_obs.Histogram.observe_int h_global v)
              (Sb_state.Store.merged_values st)
          end)
    t.runtimes

let run_trace ?on_output ?(burst = Runtime.default_burst) t packets =
  if burst < 1 then invalid_arg "Sharded.run_trace: burst must be positive";
  if Array.length t.runtimes = 1 then begin
    (* One shard: the plan degenerates to the plain burst path. *)
    drain_control t 0;
    t.steered.(0) <- t.steered.(0) + List.length packets;
    let result = Runtime.run_trace ?on_output ~burst t.runtimes.(0) packets in
    drain_control t 0;
    result
  end
  else begin
    let acc = Runtime.Acc.create ~fid_bits:t.cfg.Runtime.fid_bits () in
    let originals = Array.of_list packets in
    let total = Array.length originals in
    (* Same replay discipline as the unsharded loop: the trace is never
       mutated; copies live in a reusable pool unless [on_output] may
       retain them. *)
    let pool =
      if on_output = None then
        Array.init (min burst (max total 1)) (fun _ -> Sb_packet.Packet.scratch ())
      else [||]
    in
    let i = ref 0 in
    while !i < total do
      (* Maximal same-shard stretch, capped at the burst size: batching
         preserved, global arrival order preserved. *)
      let s = shard_of_packet t originals.(!i) in
      let j = ref (!i + 1) in
      while !j < total && !j - !i < burst && shard_of_packet t originals.(!j) = s do
        incr j
      done;
      let len = !j - !i in
      for k = 0 to len - 1 do
        note_arrival t s originals.(!i + k)
      done;
      (* Absorb what other shards broadcast since this shard last ran —
         before the next packet touches its state, which is exactly the
         point the unsharded runtime would have seen the same fault. *)
      drain_control t s;
      let seg =
        if on_output = None then begin
          for k = 0 to len - 1 do
            Sb_packet.Packet.copy_into ~src:originals.(!i + k) ~dst:pool.(k)
          done;
          pool
        end
        else Array.init len (fun k -> Sb_packet.Packet.copy originals.(!i + k))
      in
      let base = !i in
      Runtime.process_burst_into t.runtimes.(s) seg ~off:0 ~len (fun k out ->
          Runtime.Acc.consume acc originals.(base + k) out;
          Option.iter (fun f -> f originals.(base + k) out) on_output);
      (* Sequential replay of the directory events: per packet in trace
         order, arrival then prune.  This makes the end state independent
         of where burst boundaries fall — a flow that closes and restarts
         inside one burst stays in the directory, exactly as it would had
         the FIN and the new SYN landed in different bursts (and exactly
         as the parallel executor, whose batch boundaries differ, computes
         it). *)
      for k = 0 to len - 1 do
        note_seen t s originals.(base + k);
        prune_if_final t originals.(base + k)
      done;
      (* Stretch-boundary state merge: publish shard [s]'s global-cell
         contributions and refresh every shard's cached view before the
         next stretch runs.  Only one shard executes per stretch, so a
         condition reading [read_merged] inside the stretch sees fresh
         other-shard contributions plus its own live ones — exactly the
         value the unsharded chain would compute — and a global threshold
         crossed only by the cross-shard sum fires on the same packet it
         would have unsharded. *)
      if Sb_state.Store.has_global t.cfg.Runtime.state then
        Sb_state.Store.merge_round t.cfg.Runtime.state;
      i := !j
    done;
    (* Converge at end of run: a shard that received no packet after the
       last broadcast still absorbs it, so every shard's health table ends
       identical to the unsharded run's. *)
    for s = 0 to Array.length t.runtimes - 1 do
      drain_control t s
    done;
    let result = Runtime.Acc.result acc in
    finish_obs t result;
    merge_obs t;
    result
  end

let stats t =
  let flows = ownership_counts t in
  let st = t.cfg.Runtime.state in
  let shared = Sb_state.Store.shards st = Array.length t.runtimes in
  List.init (Array.length t.runtimes) (fun i ->
      {
        Report.shard = i;
        packets = t.steered.(i);
        flows = flows.(i);
        rules = Sb_mat.Global_mat.flow_count (Runtime.global_mat t.runtimes.(i));
        control_msgs = Control.absorbed t.control ~shard:i;
        migrated_in = t.migrated_in.(i);
        migrated_out = t.migrated_out.(i);
        state_entries =
          (if shared then Sb_state.Store.flow_entries (Sb_state.Store.replica st i) else 0);
      })
