type msg = Nf_fault of string | Apply of (int -> Speedybox.Runtime.t -> unit)

type inbox = {
  lock : Mutex.t;
  mutable queue : msg list;  (* newest-first; reversed at drain *)
  mutable drained : int;
  pending : bool Atomic.t;
      (* mirrors [queue <> []]: executors drain at every batch boundary
         and messages are rare, so the empty case must cost one atomic
         load, not a mutex round-trip *)
}

type t = inbox array

let create ~shards =
  if shards < 1 then invalid_arg "Control.create: shards must be positive";
  Array.init shards (fun _ ->
      { lock = Mutex.create (); queue = []; drained = 0; pending = Atomic.make false })

let shards t = Array.length t

let post t ~shard msg =
  let inbox = t.(shard) in
  Mutex.lock inbox.lock;
  inbox.queue <- msg :: inbox.queue;
  Atomic.set inbox.pending true;
  Mutex.unlock inbox.lock

let broadcast t ?(from = -1) msg =
  Array.iteri (fun i _ -> if i <> from then post t ~shard:i msg) t

let drain t ~shard handler =
  let inbox = t.(shard) in
  if not (Atomic.get inbox.pending) then 0
  else begin
    (* Snapshot under the lock, handle outside it: handlers may post
       further messages (a drained fault can trigger a broadcast) without
       deadlock — those re-raise [pending] for the next drain. *)
    Mutex.lock inbox.lock;
    let batch = List.rev inbox.queue in
    inbox.queue <- [];
    Atomic.set inbox.pending false;
    Mutex.unlock inbox.lock;
    let n = List.length batch in
    inbox.drained <- inbox.drained + n;
    List.iter handler batch;
    n
  end

let absorbed t ~shard = t.(shard).drained
