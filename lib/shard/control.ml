type msg = Nf_fault of string | Apply of (int -> Speedybox.Runtime.t -> unit)

type inbox = {
  lock : Mutex.t;
  mutable queue : msg list;  (* newest-first; reversed at drain *)
  mutable drained : int;
}

type t = inbox array

let create ~shards =
  if shards < 1 then invalid_arg "Control.create: shards must be positive";
  Array.init shards (fun _ -> { lock = Mutex.create (); queue = []; drained = 0 })

let shards t = Array.length t

let post t ~shard msg =
  let inbox = t.(shard) in
  Mutex.lock inbox.lock;
  inbox.queue <- msg :: inbox.queue;
  Mutex.unlock inbox.lock

let broadcast t ?(from = -1) msg =
  Array.iteri (fun i _ -> if i <> from then post t ~shard:i msg) t

let drain t ~shard handler =
  let inbox = t.(shard) in
  (* Snapshot under the lock, handle outside it: handlers may post further
     messages (a drained fault can trigger a broadcast) without deadlock. *)
  Mutex.lock inbox.lock;
  let batch = List.rev inbox.queue in
  inbox.queue <- [];
  Mutex.unlock inbox.lock;
  let n = List.length batch in
  inbox.drained <- inbox.drained + n;
  List.iter handler batch;
  n

let absorbed t ~shard = t.(shard).drained
