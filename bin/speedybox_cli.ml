(* The speedybox command-line tool.

   `run`          process a workload through a chain, print statistics
   `equivalence`  check SpeedyBox output/state against the original chain
   `chains`       list predefined chains and the chain-spec language
   `trace`        generate, describe and optionally save a workload *)

open Cmdliner

let make_trace ~seed ~flows ~mean_packets =
  Sb_trace.Workload.dcn_trace
    {
      Sb_trace.Workload.seed;
      n_flows = flows;
      mean_flow_packets = float_of_int mean_packets;
      payload_len = (16, 512);
      udp_fraction = 0.1;
      malicious_fraction = 0.05;
      tokens = [ "attack"; "exploit"; "beacon" ];
    }

(* Loader errors (malformed trace lines, bad pcap magic, unreadable files)
   become a one-line message and a nonzero exit, never a backtrace. *)
let load_or_make_trace ~trace_file ~seed ~flows ~mean_packets =
  match trace_file with
  | Some path -> (
      try
        if Filename.check_suffix path ".pcap" then Ok (Sb_trace.Pcap.load path)
        else Ok (Sb_trace.Trace_io.load path)
      with Invalid_argument msg | Sys_error msg ->
        Error (Printf.sprintf "speedybox: cannot load trace %s: %s" path msg))
  | None -> Ok (make_trace ~seed ~flows ~mean_packets)

(* Common options *)

let chain_arg =
  let doc =
    "Chain to run: a predefined name (see $(b,chains)) or a spec such as \
     $(b,mazunat,maglev:4,monitor)."
  in
  Arg.(value & opt string "chain1" & info [ "c"; "chain" ] ~docv:"CHAIN" ~doc)

let platform_arg =
  let doc = "Execution platform model: $(b,bess) or $(b,onvm)." in
  let platform_conv =
    Arg.enum [ ("bess", Sb_sim.Platform.Bess); ("onvm", Sb_sim.Platform.Onvm) ]
  in
  Arg.(
    value
    & opt platform_conv Sb_sim.Platform.Bess
    & info [ "p"; "platform" ] ~docv:"PLATFORM" ~doc)

let mode_arg =
  let doc = "Processing mode: $(b,original) or $(b,speedybox)." in
  let mode_conv =
    Arg.enum
      [ ("original", Speedybox.Runtime.Original); ("speedybox", Speedybox.Runtime.Speedybox) ]
  in
  Arg.(
    value
    & opt mode_conv Speedybox.Runtime.Speedybox
    & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let seed_arg =
  let doc = "Workload seed (runs are fully deterministic)." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let flows_arg =
  let doc = "Number of flows to generate." in
  Arg.(value & opt int 100 & info [ "f"; "flows" ] ~docv:"N" ~doc)

let packets_arg =
  let doc = "Mean packets per flow (heavy-tailed)." in
  Arg.(value & opt int 12 & info [ "k"; "mean-packets" ] ~docv:"N" ~doc)

let trace_file_arg =
  let doc = "Replay a saved trace file instead of generating a workload." in
  Arg.(value & opt (some file) None & info [ "t"; "trace" ] ~docv:"FILE" ~doc)

let show_state_arg =
  let doc = "Print per-NF state digests after the run." in
  Arg.(value & flag & info [ "show-state" ] ~doc)

let show_rules_arg =
  let doc = "Print up to $(docv) consolidated Global MAT rules after the run." in
  Arg.(value & opt int 0 & info [ "show-rules" ] ~docv:"N" ~doc)

let show_stages_arg =
  let doc = "Print the per-stage cycle breakdown after the run." in
  Arg.(value & flag & info [ "show-stages" ] ~doc)

let staged_rate_arg =
  let doc =
    "Run on the staged ONVM executor with Poisson arrivals at $(docv) Mpps \
     (real queueing: consolidation races, reordering, ring loss)."
  in
  Arg.(value & opt (some float) None & info [ "staged-rate" ] ~docv:"MPPS" ~doc)

let burst_arg =
  let doc =
    "Process the trace in bursts of $(docv) packets (DPDK-style).  On the \
     analytic runtime results are identical to per-packet processing, just \
     cheaper; on the staged executor ($(b,--staged-rate)) stages drain \
     their rings in bursts, amortizing the ring hop.  Default 1 \
     (per-packet)."
  in
  Arg.(value & opt int 1 & info [ "b"; "burst" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Steer packets by symmetric flow hash across $(docv) shards, each with \
     its own runtime and chain instance (see lib/shard).  Default 1 \
     (unsharded)."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let shard_parallel_arg =
  let doc =
    "Run the shards on one OCaml domain each (the parallel executor).  \
     Requires $(b,--shards) > 1 and no $(b,--inject); without it the \
     deterministic single-threaded executor runs.  Observability exports \
     work here too: each domain records into its own child sink, merged \
     after the join."
  in
  Arg.(value & flag & info [ "shard-parallel" ] ~doc)

(* Observability exports (see lib/obs) *)

let metrics_out_arg =
  let doc =
    "Write run metrics to $(docv) after the run: Prometheus text format, or \
     JSON when $(docv) ends in $(b,.json)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write per-packet spans to $(docv) as Chrome trace-event JSON (load in \
     Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let trace_flows_arg =
  let doc =
    "Trace only the first $(docv) distinct flows (bounds the --trace-out \
     size; default: all flows)."
  in
  Arg.(value & opt (some int) None & info [ "trace-flows" ] ~docv:"N" ~doc)

let metrics_interval_arg =
  let doc =
    "Capture a metrics snapshot every $(docv) instrumented packets (simulated \
     clock timestamps, so snapshot series are deterministic).  Requires \
     $(b,--metrics-out) $(i,FILE); the series lands in \
     $(i,FILE)$(b,.snapshots.json).  Per shard under $(b,--shards) > 1."
  in
  Arg.(value & opt (some int) None & info [ "metrics-interval" ] ~docv:"N" ~doc)

(* One failed write is one stderr line and a nonzero exit, like the trace
   loaders. *)
let write_file path contents =
  try
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Ok ()
  with Sys_error msg -> Error (Printf.sprintf "speedybox: cannot write %s: %s" path msg)

let export_obs obs ~metrics_out ~trace_out =
  let ( let* ) = Result.bind in
  let* () =
    match (metrics_out, Sb_obs.Sink.metrics obs) with
    | Some path, Some m ->
        let* () =
          write_file path
            (if Filename.check_suffix path ".json" then Sb_obs.Metrics.to_json m
             else Sb_obs.Metrics.to_prometheus m)
        in
        if Sb_obs.Sink.snapshot_every obs <> None then
          write_file (path ^ ".snapshots.json") (Sb_obs.Sink.snapshots_json obs)
        else Ok ()
    | _ -> Ok ()
  in
  match (trace_out, Sb_obs.Sink.tracer obs) with
  | Some path, Some tr -> write_file path (Sb_obs.Tracer.to_chrome_json tr)
  | _ -> Ok ()

let build_sink ~metrics_out ~trace_out ~trace_flows ~metrics_interval =
  if metrics_out = None && trace_out = None then Sb_obs.Sink.null
  else
    Sb_obs.Sink.create ~metrics:(metrics_out <> None) ~trace:(trace_out <> None)
      ?trace_flows ?snapshot_every:metrics_interval ()

(* Impairment stage (see lib/impair) *)

let impair_arg =
  let doc =
    "Impair the trace before it reaches the executor: a comma-separated \
     mutator spec such as $(b,reorder:0.05,dup:0.01,loss:0.02).  Mutators: \
     $(b,reorder), $(b,loss), $(b,dup), $(b,corrupt), $(b,corrupt-fix), \
     $(b,retrans), $(b,delay), $(b,blackhole); rates in [0,1].  The \
     impaired trace is a deterministic function of the spec and \
     $(b,--impair-seed).  Corrupting mutators arm checksum verification at \
     the classifier."
  in
  Arg.(value & opt (some string) None & info [ "impair" ] ~docv:"SPEC" ~doc)

let impair_seed_arg =
  let doc = "Seed for the impairment stage's per-mutator RNGs." in
  Arg.(value & opt int 1 & info [ "impair-seed" ] ~docv:"SEED" ~doc)

(* Fault injection (see lib/fault) *)

let inject_arg =
  let doc =
    "Inject deterministic faults into $(b,NF) at $(b,RATE) per call; \
     $(b,KIND) is $(b,raise), $(b,corrupt) or $(b,stall).  Repeatable."
  in
  Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"NF:KIND:RATE" ~doc)

let fault_seed_arg =
  let doc = "Seed for the fault injector's per-NF schedules." in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let on_failure_arg =
  let doc =
    "What a Failed NF's packets do: $(b,bypass), $(b,drop-flow) or \
     $(b,slow-path-only)."
  in
  let policy_conv =
    Arg.enum
      [
        ("bypass", Sb_fault.Health.Bypass);
        ("drop-flow", Sb_fault.Health.Drop_flow);
        ("slow-path-only", Sb_fault.Health.Slow_path_only);
      ]
  in
  Arg.(
    value
    & opt policy_conv Sb_fault.Health.Slow_path_only
    & info [ "on-failure" ] ~docv:"POLICY" ~doc)

(* "NF:KIND:RATE" specs -> an armed injector (None when no specs). *)
let build_injector ~fault_seed specs =
  if specs = [] then Ok None
  else begin
    let inj = Sb_fault.Injector.create ~seed:fault_seed () in
    let arm spec =
      match String.split_on_char ':' spec with
      | [ nf; kind; rate ] -> (
          match (Sb_fault.Injector.kind_of_string kind, float_of_string_opt rate) with
          | Some kind, Some rate when rate >= 0. && rate <= 1. ->
              Sb_fault.Injector.set_rate inj ~nf kind rate;
              Ok ()
          | None, _ -> Error (Printf.sprintf "speedybox: --inject %s: unknown kind %s" spec kind)
          | _, (None | Some _) ->
              Error (Printf.sprintf "speedybox: --inject %s: rate must be in [0,1]" spec))
      | _ -> Error (Printf.sprintf "speedybox: --inject %s: want NF:KIND:RATE" spec)
    in
    List.fold_left
      (fun acc spec -> match acc with Error _ -> acc | Ok () -> arm spec)
      (Ok ()) specs
    |> Result.map (fun () -> Some inj)
  end

(* run ------------------------------------------------------------------ *)

let staged_run build ?injector ~obs ~burst trace rate =
  let trace = Sb_trace.Workload.with_poisson_times ~seed:97 ~rate_mpps:rate trace in
  let r = Speedybox.Staged_runtime.run ~burst ?injector ~obs (build ()) trace in
  Printf.printf "staged ONVM executor at %.2f Mpps offered:\n" rate;
  Printf.printf "  verdicts   : %d forwarded, %d dropped by NFs, %d ring overflow\n"
    r.Speedybox.Staged_runtime.forwarded r.Speedybox.Staged_runtime.dropped_by_chain
    r.Speedybox.Staged_runtime.dropped_overflow;
  Printf.printf "  paths      : slow %d, fast %d\n" r.Speedybox.Staged_runtime.slow_path
    r.Speedybox.Staged_runtime.fast_path;
  Printf.printf "  reordered  : %d packets overtook their flow\n"
    r.Speedybox.Staged_runtime.reordered;
  Printf.printf "  sojourn    : p50 %.2fus p99 %.2fus\n"
    (Sb_sim.Stats.percentile r.Speedybox.Staged_runtime.sojourn_us 50.)
    (Sb_sim.Stats.percentile r.Speedybox.Staged_runtime.sojourn_us 99.);
  if r.Speedybox.Staged_runtime.events_fired > 0 then
    Printf.printf "  events     : %d fired\n" r.Speedybox.Staged_runtime.events_fired;
  if r.Speedybox.Staged_runtime.faults > 0 then
    Printf.printf "  faults     : %d contained/corrupted/stalled, %d flows quarantined\n"
      r.Speedybox.Staged_runtime.faults r.Speedybox.Staged_runtime.quarantines;
  0

let run_cmd_impl chain platform mode seed flows mean_packets trace_file show_state show_rules
    show_stages staged_rate burst shards shard_parallel inject fault_seed on_failure
    impair impair_seed metrics_out trace_out trace_flows metrics_interval =
  if burst < 1 then begin
    prerr_endline "speedybox: --burst must be >= 1";
    exit 2
  end;
  if shards < 1 then begin
    prerr_endline "speedybox: --shards must be >= 1";
    exit 2
  end;
  if shards > 1 && staged_rate <> None then begin
    prerr_endline "speedybox: --shards and --staged-rate are mutually exclusive";
    exit 2
  end;
  if shard_parallel then begin
    (* Surface the parallel executor's preconditions as CLI errors rather
       than Invalid_argument backtraces. *)
    if shards < 2 then begin
      prerr_endline "speedybox: --shard-parallel requires --shards >= 2";
      exit 2
    end;
    if inject <> [] then begin
      prerr_endline
        "speedybox: --shard-parallel cannot run with --inject (fault schedules are \
         global); drop --shard-parallel for the deterministic executor";
      exit 2
    end
  end;
  (match metrics_interval with
  | Some n when n < 1 ->
      prerr_endline "speedybox: --metrics-interval must be >= 1";
      exit 2
  | Some _ when metrics_out = None ->
      prerr_endline "speedybox: --metrics-interval requires --metrics-out";
      exit 2
  | _ -> ());
  let finish_with_exports obs code =
    if code <> 0 then code
    else
      match export_obs obs ~metrics_out ~trace_out with
      | Ok () -> 0
      | Error msg ->
          prerr_endline msg;
          1
  in
  (* --impair parse errors surface like every other bad option: one line,
     exit 1, no backtrace. *)
  let impair_spec =
    match impair with
    | None -> Ok None
    | Some spec ->
        Result.fold
          ~ok:(fun s -> Ok (Some s))
          ~error:(fun msg -> Error ("speedybox: --impair: " ^ msg))
          (Sb_impair.Impair.parse_spec spec)
  in
  match
    ( Sb_experiments.Chain_registry.build chain,
      load_or_make_trace ~trace_file ~seed ~flows ~mean_packets,
      build_injector ~fault_seed inject,
      impair_spec )
  with
  | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _ | _, _, _, Error msg ->
      prerr_endline msg;
      1
  | Ok build, Ok trace, Ok injector, Ok impair_spec ->
      (* Impair before any executor sees the trace; corrupting mutators arm
         checksum verification at the classifier so damaged headers are
         rejected rather than consolidated. *)
      let trace, verify_checksums =
        match impair_spec with
        | None -> (trace, false)
        | Some spec ->
            let impaired, summary = Sb_impair.Impair.apply ~seed:impair_seed spec trace in
            print_endline (Sb_impair.Impair.summary_line ~seed:impair_seed summary);
            ( impaired,
              List.exists (function Sb_impair.Impair.Corrupt _ -> true | _ -> false) spec )
      in
      if staged_rate <> None then begin
        let obs = build_sink ~metrics_out ~trace_out ~trace_flows ~metrics_interval in
        finish_with_exports obs
          (staged_run build ?injector ~obs ~burst trace (Option.get staged_rate))
      end
      else if shards > 1 then begin
        let obs = build_sink ~metrics_out ~trace_out ~trace_flows ~metrics_interval in
        (* One state store across the shard chains: each shard's NFs build
           against their replica, so global-scope cells (chain-wide DoS
           budgets, monitor totals, backend health) span the deployment
           and the report's global-state section matches the unsharded
           run byte for byte. *)
        let store = Sb_state.Store.create ~shards () in
        let cfg =
          Speedybox.Runtime.config ~platform ~mode ~verify_checksums
            ~fault_policy:(Sb_fault.Health.policy ~on_failure ())
            ?injector ~obs ~state:store ()
        in
        let build_shard =
          match Sb_experiments.Chain_registry.build_sharded ~store chain with
          | Ok b -> b
          | Error msg ->
              (* unreachable: [build] already validated the same spec *)
              invalid_arg msg
        in
        let sh = Sb_shard.Sharded.create ~shards cfg build_shard in
        let result =
          if shard_parallel then Sb_shard.Parallel_exec.run_trace ~burst sh trace
          else Sb_shard.Sharded.run_trace ~burst sh trace
        in
        let rts = List.init shards (Sb_shard.Sharded.runtime sh) in
        print_string
          (Speedybox.Report.sharded_run_summary
             ~label:
               (Printf.sprintf "%s on %s (%s, %d shards, %s)" chain
                  (Sb_sim.Platform.name platform)
                  (match mode with
                  | Speedybox.Runtime.Original -> "original"
                  | Speedybox.Runtime.Speedybox -> "speedybox")
                  shards
                  (if shard_parallel then "parallel" else "deterministic"))
             rts result);
        print_string (Speedybox.Report.shard_summary (Sb_shard.Sharded.stats sh));
        if show_stages then print_string (Speedybox.Report.stage_breakdown result);
        if show_state then
          List.iteri
            (fun i rt ->
              Printf.printf "shard %d " i;
              print_string (Speedybox.Report.chain_state (Speedybox.Runtime.chain rt)))
            rts;
        if show_rules > 0 then
          List.iteri
            (fun i rt ->
              Printf.printf "shard %d consolidated rules:\n" i;
              print_string (Speedybox.Report.flow_rules rt ~limit:show_rules))
            rts;
        finish_with_exports obs 0
      end
      else begin
        let obs = build_sink ~metrics_out ~trace_out ~trace_flows ~metrics_interval in
        let store = Sb_state.Store.create ~shards:1 () in
        let built =
          match Sb_experiments.Chain_registry.build_sharded ~store chain with
          | Ok b -> b 0
          | Error _ -> build ()
        in
        let rt =
          Speedybox.Runtime.create
            (Speedybox.Runtime.config ~platform ~mode ~verify_checksums
               ~fault_policy:(Sb_fault.Health.policy ~on_failure ())
               ?injector ~obs ~state:store ())
            built
        in
        let result = Speedybox.Runtime.run_trace ~burst rt trace in
        print_string
          (Speedybox.Report.run_summary
             ~label:
               (Printf.sprintf "%s on %s (%s)" chain
                  (Sb_sim.Platform.name platform)
                  (match mode with
                  | Speedybox.Runtime.Original -> "original"
                  | Speedybox.Runtime.Speedybox -> "speedybox"))
             rt result);
        if show_stages then print_string (Speedybox.Report.stage_breakdown result);
        if show_state then print_string (Speedybox.Report.chain_state built);
        if show_rules > 0 then begin
          print_endline "consolidated rules:";
          print_string (Speedybox.Report.flow_rules rt ~limit:show_rules)
        end;
        finish_with_exports obs 0
      end

let run_cmd =
  let doc = "Run a workload through a chain and report statistics." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run_cmd_impl $ chain_arg $ platform_arg $ mode_arg $ seed_arg $ flows_arg
      $ packets_arg $ trace_file_arg $ show_state_arg $ show_rules_arg $ show_stages_arg
      $ staged_rate_arg $ burst_arg $ shards_arg $ shard_parallel_arg $ inject_arg
      $ fault_seed_arg $ on_failure_arg $ impair_arg $ impair_seed_arg $ metrics_out_arg
      $ trace_out_arg $ trace_flows_arg $ metrics_interval_arg)

(* equivalence ----------------------------------------------------------- *)

let equivalence_cmd_impl chain platform seed flows mean_packets trace_file =
  match
    ( Sb_experiments.Chain_registry.build chain,
      load_or_make_trace ~trace_file ~seed ~flows ~mean_packets )
  with
  | Error msg, _ | _, Error msg ->
      prerr_endline msg;
      1
  | Ok build, Ok trace ->
      let report =
        Speedybox.Equivalence.check
          ~config_a:(Speedybox.Runtime.config ~platform ~mode:Speedybox.Runtime.Original ())
          ~config_b:(Speedybox.Runtime.config ~platform ~mode:Speedybox.Runtime.Speedybox ())
          ~build_chain:build trace
      in
      Format.printf "%a@." Speedybox.Equivalence.pp_report report;
      if Speedybox.Equivalence.equivalent report then begin
        print_endline "EQUIVALENT: SpeedyBox matches the original chain";
        0
      end
      else begin
        print_endline "NOT EQUIVALENT";
        1
      end

let equivalence_cmd =
  let doc = "Check SpeedyBox vs original-chain equivalence on a workload." in
  Cmd.v
    (Cmd.info "equivalence" ~doc)
    Term.(
      const equivalence_cmd_impl $ chain_arg $ platform_arg $ seed_arg $ flows_arg
      $ packets_arg $ trace_file_arg)

(* chains ----------------------------------------------------------------- *)

let chains_cmd =
  let doc = "List predefined chains and the spec language." in
  Cmd.v
    (Cmd.info "chains" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (name, descr) -> Printf.printf "%-14s %s\n" name descr)
            (Sb_experiments.Chain_registry.registry ());
          print_endline "";
          print_endline
            "or give a spec: mazunat | maglev[:n] | monitor | ipfilter[:port] | statefulfw";
          print_endline
            "  | gateway[:port] | snort | dosguard[:k] | vpn-in | vpn-out | synthetic[:c]";
          print_endline "e.g.  -c mazunat,maglev:4,monitor,ipfilter:22";
          0)
      $ const ())

(* deploy ----------------------------------------------------------------- *)

let deploy_cmd_impl path show_stages =
  match Sb_experiments.Deployment.load path with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok deployment -> (
      match Sb_experiments.Deployment.build_runtime deployment with
      | Error msg ->
          prerr_endline msg;
          1
      | Ok rt ->
          let result =
            Speedybox.Runtime.run_trace rt (Sb_experiments.Deployment.workload deployment)
          in
          print_string
            (Speedybox.Report.run_summary
               ~label:(Printf.sprintf "deployment %s" (Filename.basename path))
               rt result);
          if show_stages then print_string (Speedybox.Report.stage_breakdown result);
          0)

let deploy_cmd =
  let doc = "Run the deployment described by a file (see lib/experiments/deployment.mli)." in
  let path_arg =
    let doc = "Deployment file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v (Cmd.info "deploy" ~doc) Term.(const deploy_cmd_impl $ path_arg $ show_stages_arg)

(* trace ------------------------------------------------------------------ *)

(* --flow FID: run the workload through the chain with the flow timeline
   armed and print the flow's lifecycle (first-packet, consolidated,
   event-rewrite, quarantined, degraded-bypass, evicted, idle-expired). *)
let flow_timeline_query ~fid ~chain ~trace_file ~seed ~flows ~mean_packets ~inject
    ~fault_seed ~on_failure =
  match
    ( Sb_experiments.Chain_registry.build chain,
      load_or_make_trace ~trace_file ~seed ~flows ~mean_packets,
      build_injector ~fault_seed inject )
  with
  | Error msg, _, _ | _, Error msg, _ | _, _, Error msg ->
      prerr_endline msg;
      1
  | Ok build, Ok trace, Ok injector -> (
      let obs = Sb_obs.Sink.create ~timeline:true () in
      let rt =
        Speedybox.Runtime.create
          (Speedybox.Runtime.config
             ~fault_policy:(Sb_fault.Health.policy ~on_failure ())
             ?injector ~obs ())
          (build ())
      in
      ignore (Speedybox.Runtime.run_trace rt trace);
      match Sb_obs.Sink.timeline obs with
      | None -> assert false (* the sink was created with the timeline armed *)
      | Some tl ->
          let events = Sb_obs.Timeline.events tl fid in
          if events = [] then begin
            let known = Sb_obs.Timeline.flows tl in
            let sample =
              List.filteri (fun i _ -> i < 10) known
              |> List.map string_of_int |> String.concat ", "
            in
            Printf.eprintf
              "speedybox: no timeline events for flow %d (%d flows seen%s)\n" fid
              (List.length known)
              (if known = [] then "" else ": " ^ sample ^ if List.length known > 10 then ", ..." else "");
            1
          end
          else begin
            Printf.printf "flow %d lifecycle (%s, chain %s):\n" fid
              (match trace_file with Some f -> f | None -> Printf.sprintf "seed %d" seed)
              chain;
            List.iter (fun e -> Format.printf "  %a@." Sb_obs.Timeline.pp_entry e) events;
            0
          end)

let trace_cmd_impl seed flows mean_packets save_file flow chain trace_file inject fault_seed
    on_failure =
  match flow with
  | Some fid ->
      flow_timeline_query ~fid ~chain ~trace_file ~seed ~flows ~mean_packets ~inject
        ~fault_seed ~on_failure
  | None ->
      let trace = make_trace ~seed ~flows ~mean_packets in
      let sizes = Sb_sim.Stats.create () in
      List.iter (fun p -> Sb_sim.Stats.add_int sizes p.Sb_packet.Packet.len) trace;
      let summary = Sb_sim.Stats.summarize sizes in
      Printf.printf "packets     : %d\n" (List.length trace);
      Printf.printf "frame bytes : mean %.0f p50 %.0f p90 %.0f max %.0f\n"
        summary.Sb_sim.Stats.mean summary.Sb_sim.Stats.p50 summary.Sb_sim.Stats.p90
        summary.Sb_sim.Stats.max;
      (match save_file with
      | Some path ->
          Sb_trace.Trace_io.save path trace;
          Printf.printf "saved       : %s\n" path
      | None -> ());
      0

let trace_cmd =
  let doc =
    "Generate a workload, describe it and optionally save it; or, with \
     $(b,--flow), run it through a chain and print one flow's lifecycle \
     timeline."
  in
  let save_arg =
    let doc = "Write the generated trace to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "save" ] ~docv:"FILE" ~doc)
  in
  let flow_arg =
    let doc =
      "Run the workload through the chain ($(b,--chain), fault options apply) \
       and print flow $(docv)'s lifecycle events."
    in
    Arg.(value & opt (some int) None & info [ "flow" ] ~docv:"FID" ~doc)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace_cmd_impl $ seed_arg $ flows_arg $ packets_arg $ save_arg $ flow_arg
      $ chain_arg $ trace_file_arg $ inject_arg $ fault_seed_arg $ on_failure_arg)

let () =
  let doc = "low-latency NFV service chains with cross-NF runtime consolidation" in
  let info = Cmd.info "speedybox" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ run_cmd; equivalence_cmd; chains_cmd; trace_cmd; deploy_cmd ]))
