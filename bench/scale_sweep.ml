(* Million-flow load sweep: how the fast path and the idle-expiry timer
   wheel hold up when the flow population is 10k / 100k / 1M rather than
   the 64 flows of the microbenches.

   The stream is generated, not materialised: a single burst's worth of
   template TCP frames is rewritten in place per burst (source address
   bytes + ingress cycle), so a million-flow run allocates 32 packets,
   not a million-element trace list.  Packets go through
   [Runtime.process_burst_into] in bursts of 32 — the deployment shape —
   so the sweep exercises the pipelined prepare/prefetch/probe path, not
   the scalar one.  Flow popularity is heavy-tailed inside a sliding
   window — most packets go to recently-seen flows, the window's tail
   goes quiet — so flows continuously fall idle behind the window and
   only the timer wheel's expiry keeps the conntrack/MAT/event tables
   bounded.  A linear expiry sweep would scan the whole live table per
   advance and blow up quadratically on exactly this workload; the
   recorded ns/packet staying flat across the sweep is the evidence the
   hierarchical wheel works.

   Each tier also records the GC's side of the story: minor/major
   collections and allocated bytes per packet over the stream, plus live
   words at the end.  A flat ns/pkt curve with ballooning allocation
   would just mean the collector is hiding the cost; the sweep prints
   both so the flatness claim is checkable.

   The chain is Monitor + DosGuard (threshold high enough never to fire):
   per-flow conntrack-style state, a Global MAT rule per flow, and an
   armed per-flow event — all three tables churn at the full flow count.

   [SB_SCALE_TIERS] selects the populations (comma-separated, e.g.
   "10k,100k"): CI runs the two smaller tiers, the 1M tier stays
   bench-box-only. *)

let ip = Sb_packet.Ipv4_addr.of_octets

(* Virtual cycles between arrivals: ~0.25us of simulated time at the
   2 GHz model clock, fast enough that the window's tail goes idle well
   inside the run. *)
let gap_cycles = 500

let pkts_per_flow = 3
let block = 4096 (* packets per wall-clock sample *)
let burst = 32

type outcome = {
  flows : int;
  packets : int;
  ns_per_pkt : float; (* mean over the whole stream *)
  p50_block : float; (* per-packet ns, distribution over blocks *)
  p99_block : float;
  peak_rules : int; (* high-water Global MAT occupancy *)
  expired : int;
  live_end : int;
  heap_mb : float;
  minor_gcs : int; (* minor collections over the stream *)
  major_gcs : int; (* major collections over the stream *)
  alloc_b_pkt : float; (* bytes allocated per packet *)
  snapshots : int; (* periodic metrics snapshots captured during the run *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let run_one total_flows =
  let window = max 1024 (total_flows / 16) in
  (* A flow untouched for a window's worth of arrivals is gone: idle
     expiry must keep up with the sliding window, not trail the run. *)
  let idle_timeout_cycles = window * gap_cycles in
  let chain =
    Speedybox.Chain.create ~name:"scale-sweep"
      [
        Sb_nf.Monitor.nf (Sb_nf.Monitor.create ());
        Sb_nf.Dos_guard.nf (Sb_nf.Dos_guard.create ~threshold:max_int ());
      ]
  in
  (* A long run should emit a metrics time series, not one terminal dump:
     the armed sink captures a snapshot every eighth of the stream
     (simulated-clock timestamps, so the series is deterministic).  The
     arming cost lands identically on every population, and the flatness
     gate is a same-run ratio, so the contract is unaffected. *)
  let packets = pkts_per_flow * total_flows in
  let obs = Sb_obs.Sink.create ~metrics:true ~snapshot_every:(max 1 (packets / 8)) () in
  let rt =
    Speedybox.Runtime.create
      (Speedybox.Runtime.config ~idle_timeout_cycles ~obs ())
      chain
  in
  let pkts =
    Array.init burst (fun _ ->
        Sb_packet.Packet.tcp
          ~payload:(String.make 64 'x')
          ~src:(ip 10 0 0 1) ~dst:(ip 192 168 1 10) ~src_port:40000 ~dst_port:80 ())
  in
  let st = Random.State.make [| 0x5ca1e; total_flows |] in
  let span = total_flows - window in
  let blocks = Array.make ((packets / block) + 1) 0. in
  let n_blocks = ref 0 in
  let peak_rules = ref 0 in
  let gc0 = Gc.quick_stat () in
  let t_start = Unix.gettimeofday () in
  let t_block = ref t_start in
  let t = ref 0 in
  while !t < packets do
    let len = min burst (packets - !t) in
    for k = 0 to len - 1 do
      let t = !t + k in
      let base = if span <= 0 then 0 else t * span / packets in
      (* Heavy tail towards the newest end of the window: u^3 concentrates
         mass near offset 0, mirrored so offset 0 maps to the youngest
         flow; old flows are touched rarely, then not at all. *)
      let u = Random.State.float st 1.0 in
      let off = int_of_float (float_of_int window *. (u *. u *. u)) in
      let off = if off >= window then window - 1 else off in
      let flow = base + (window - 1 - off) in
      let pkt = pkts.(k) in
      Sb_packet.Packet.set_field pkt Sb_packet.Field.Src_ip
        (Sb_packet.Field.Ip (ip 10 (flow lsr 16) ((flow lsr 8) land 255) (flow land 255)));
      pkt.Sb_packet.Packet.ingress_cycle <- t * gap_cycles
    done;
    Speedybox.Runtime.process_burst_into rt pkts ~off:0 ~len (fun _ _ -> ());
    let t' = !t + len in
    if t' / block > !t / block then begin
      let now = Unix.gettimeofday () in
      blocks.(!n_blocks) <- (now -. !t_block) *. 1e9 /. float_of_int block;
      incr n_blocks;
      t_block := now;
      (* [flow_count], not [memory_stats]: the latter string-formats every
         live rule, an O(live-flows) cost per sample that would charge the
         big tiers for the measurement itself. *)
      let rules = Sb_mat.Global_mat.flow_count (Speedybox.Runtime.global_mat rt) in
      if rules > !peak_rules then peak_rules := rules
    end;
    t := t'
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  let gc1 = Gc.quick_stat () in
  let alloc_words =
    gc1.Gc.minor_words -. gc0.Gc.minor_words
    +. (gc1.Gc.major_words -. gc0.Gc.major_words)
    -. (gc1.Gc.promoted_words -. gc0.Gc.promoted_words)
  in
  let sorted = Array.sub blocks 0 !n_blocks in
  Array.sort compare sorted;
  let live_end = Sb_mat.Global_mat.flow_count (Speedybox.Runtime.global_mat rt) in
  {
    flows = total_flows;
    packets;
    ns_per_pkt = elapsed *. 1e9 /. float_of_int packets;
    p50_block = percentile sorted 0.50;
    p99_block = percentile sorted 0.99;
    peak_rules = !peak_rules;
    expired = Speedybox.Runtime.expired_flows rt;
    live_end;
    heap_mb =
      (* Live words after a full major cycle: what the run actually
         retains, as opposed to heap size (which includes floating
         garbage the GC has not yet returned). *)
      (Gc.full_major ();
       float_of_int ((Gc.stat ()).Gc.live_words * (Sys.word_size / 8)) /. 1048576.);
    minor_gcs = gc1.Gc.minor_collections - gc0.Gc.minor_collections;
    major_gcs = gc1.Gc.major_collections - gc0.Gc.major_collections;
    alloc_b_pkt =
      alloc_words *. float_of_int (Sys.word_size / 8) /. float_of_int packets;
    snapshots = List.length (Sb_obs.Sink.snapshots obs);
  }

let label flows =
  if flows >= 1_000_000 then Printf.sprintf "%dM" (flows / 1_000_000)
  else Printf.sprintf "%dk" (flows / 1_000)

let default_tiers = [ 10_000; 100_000; 1_000_000 ]

(* "10k,100k,1M"-style tier list; unparseable entries are rejected loudly
   rather than silently shrinking the sweep. *)
let tiers_of_env () =
  match Sys.getenv_opt "SB_SCALE_TIERS" with
  | None | Some "" -> default_tiers
  | Some s ->
      String.split_on_char ',' s
      |> List.map (fun tok ->
             let tok = String.trim tok in
             let scaled mult digits =
               match int_of_string_opt digits with
               | Some n when n > 0 -> n * mult
               | _ -> failwith (Printf.sprintf "SB_SCALE_TIERS: bad tier %S" tok)
             in
             let n = String.length tok in
             if n = 0 then failwith "SB_SCALE_TIERS: empty tier"
             else
               match tok.[n - 1] with
               | 'k' | 'K' -> scaled 1_000 (String.sub tok 0 (n - 1))
               | 'm' | 'M' -> scaled 1_000_000 (String.sub tok 0 (n - 1))
               | _ -> scaled 1 tok)

let run () =
  print_endline
    "\n=== Scale sweep: heavy-tailed flow churn vs timer-wheel expiry ===";
  Printf.printf
    "  %-8s %10s %12s %12s %12s %10s %10s %10s %8s %8s %6s %9s %6s\n" "flows"
    "packets" "ns/pkt" "p50(blk)" "p99(blk)" "peak-live" "end-live" "expired"
    "live-MB" "minor-gc" "major" "alloc/pkt" "snaps";
  let outcomes =
    List.map
      (fun flows ->
        let o = run_one flows in
        Printf.printf
          "  %-8s %10d %12.1f %12.1f %12.1f %10d %10d %10d %8.1f %8d %6d %8.0fB %6d\n%!"
          (label flows) o.packets o.ns_per_pkt o.p50_block o.p99_block
          o.peak_rules o.live_end o.expired o.heap_mb o.minor_gcs o.major_gcs
          o.alloc_b_pkt o.snapshots;
        o)
      (tiers_of_env ())
  in
  (* The JSON entries check_bench.sh reads: mean per-packet latency per
     population, used to assert the cost stays flat as flows grow 100x. *)
  List.map
    (fun o ->
      ( Printf.sprintf "speedybox/scale/%s-flows idle-expiry stream (ns per packet)"
          (label o.flows),
        o.ns_per_pkt ))
    outcomes
