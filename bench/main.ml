(* The SpeedyBox benchmark harness.

   With no arguments it regenerates every table and figure of the paper's
   evaluation (each printed with the paper's reference numbers for
   comparison), runs the ablation benches and finishes with Bechamel
   wall-clock microbenchmarks of the hot operations.  Individual sections
   run via `dune exec bench/main.exe -- <section>`; see `--help`.

   `--json OUT` writes the microbenchmark results to OUT (see
   Microbench.emit_json for the schema); with no section arguments it runs
   just the micro section. *)

let sections json : (string * string * (unit -> unit)) list =
  [
    ("fig4", "header action consolidation (Fig. 4)", Sb_experiments.Fig4.run);
    ("table3", "early packet drop (Table III)", Sb_experiments.Table3.run);
    ("fig5", "state function parallelism (Fig. 5)", Sb_experiments.Fig5.run);
    ("fig6", "Snort+Monitor chain (Fig. 6)", Sb_experiments.Fig6.run);
    ("fig7", "latency reduction split (Fig. 7)", Sb_experiments.Fig7.run);
    ("fig8", "chain length sweep (Fig. 8)", Sb_experiments.Fig8.run);
    ("fig9", "real-world chain CDFs (Fig. 9)", Sb_experiments.Fig9.run);
    ("fig4nfs", "Fig. 4 sweep for other NFs (paper's [7])", Sb_experiments.Fig4_other_nfs.run);
    ("table2", "NF integration LOC (Table II)", Sb_experiments.Table2.run);
    ("baselines", "OpenBox/ParaBox-style baseline comparison", Sb_experiments.Baseline_compare.run);
    ("loadsweep", "latency/loss vs offered load (queueing extension)", Sb_experiments.Load_sweep.run);
    ("eventrate", "fast-path cost vs event frequency (extension)", Sb_experiments.Event_rate.run);
    ("staged", "staged ONVM executor: races, reordering, queueing (extension)", Sb_experiments.Staged_pipeline.run);
    ("ablations", "design-choice ablations (A1-A4)", Sb_experiments.Ablations.run);
    ("impair", "adversarial-impairment correctness matrix (robustness extension)", Sb_experiments.Impair_matrix.run);
    ( "scale",
      "million-flow idle-expiry load sweep",
      fun () ->
        (* Run standalone with --json (e.g. the CI 10k/100k tiers): the
           sweep's per-packet figures land in their own file for
           check_bench.sh's scale-only mode. *)
        let results = Scale_sweep.run () in
        match json with Some path -> Microbench.emit_json path results | None -> () );
    ( "micro",
      "Bechamel wall-clock microbenchmarks",
      fun () ->
        (* When recording JSON the scale sweep rides along so its
           per-packet figures land in the same file check_bench.sh reads.
           Microbench.run invokes it only after the micro measurements —
           the sweep's million-flow heap would otherwise inflate every
           figure recorded after it. *)
        let extra = match json with Some _ -> Scale_sweep.run | None -> fun () -> [] in
        Microbench.run ?json ~extra () );
  ]

let usage () =
  print_endline "usage: main.exe [--json OUT] [section...]";
  print_endline "sections:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-10s %s\n" name descr) (sections None);
  print_endline "with no arguments, every section runs in order.";
  print_endline "--json OUT writes microbench results (ns/run) to OUT as JSON."

let () =
  let rec split_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--json" :: [] ->
        prerr_endline "--json requires a path";
        usage ();
        exit 2
    | a :: rest -> split_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = split_json [] (List.tl (Array.to_list Sys.argv)) in
  let sections = sections json in
  match args with
  | ("-h" | "--help" | "help") :: _ -> usage ()
  | [] -> (
      match json with
      | Some _ ->
          (* A JSON target with no explicit sections means just the
             microbenchmarks — the only section the file captures. *)
          List.iter (fun (n, _, run) -> if n = "micro" then run ()) sections
      | None -> List.iter (fun (_, _, run) -> run ()) sections)
  | requested ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> String.equal n name) sections with
          | Some (_, _, run) -> run ()
          | None ->
              Printf.eprintf "unknown section %S\n" name;
              usage ();
              exit 2)
        requested
