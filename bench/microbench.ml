(* Wall-clock microbenchmarks (Bechamel) of the fast-path hot operations.

   These complement the cycle-model experiments: the model predicts what
   the paper's testbed would do, while these measure what the OCaml
   implementation actually costs on this machine. *)

open Bechamel
open Toolkit

let ip = Sb_packet.Ipv4_addr.of_string

let sample_packet () =
  Sb_packet.Packet.tcp
    ~payload:(String.make 256 'x')
    ~src:(ip "10.0.0.1") ~dst:(ip "192.168.1.10") ~src_port:40000 ~dst_port:80 ()

let sample_tuple =
  {
    Sb_flow.Five_tuple.src_ip = ip "10.0.0.1";
    dst_ip = ip "192.168.1.10";
    src_port = 40000;
    dst_port = 80;
    proto = 6;
  }

let consolidation_actions =
  [
    Sb_mat.Header_action.Forward;
    Sb_mat.Header_action.Modify
      [ (Sb_packet.Field.Src_ip, Sb_packet.Field.Ip (ip "203.0.113.1")) ];
    Sb_mat.Header_action.Modify [ (Sb_packet.Field.Dst_port, Sb_packet.Field.Port 8080) ];
    Sb_mat.Header_action.Forward;
  ]

let test_consolidate =
  Test.make ~name:"consolidate/of_actions (4 actions)"
    (Staged.stage (fun () -> Sb_mat.Consolidate.of_actions consolidation_actions))

let test_apply =
  let consolidated = Sb_mat.Consolidate.of_actions consolidation_actions in
  let packet = sample_packet () in
  Test.make ~name:"consolidate/apply (2 fields + checksums)"
    (Staged.stage (fun () -> Sb_mat.Consolidate.apply consolidated packet))

let test_fid =
  Test.make ~name:"classifier/fid-hash"
    (Staged.stage (fun () -> Sb_flow.Fid.of_tuple sample_tuple))

let test_aho_corasick =
  let automaton =
    Sb_nf.Aho_corasick.create
      [ "attack"; "exploit"; "beacon"; "malware"; "inject"; "overflow"; "shell"; "xmas" ]
  in
  let payload = Bytes.make 1400 'a' in
  Bytes.blit_string "exploit" 0 payload 700 7;
  Test.make ~name:"snort/aho-corasick scan (1400B, 8 patterns)"
    (Staged.stage (fun () -> Sb_nf.Aho_corasick.scan automaton payload 0 1400))

let test_fast_path =
  (* A pre-recorded NAT+Monitor flow; each run sends one subsequent packet
     through the full SpeedyBox fast path. *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench" [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ()) chain in
  let warm = sample_packet () in
  let _ = Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm) in
  Test.make ~name:"runtime/fast-path packet (NAT+Monitor)"
    (Staged.stage (fun () ->
         Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm)))

let test_fast_path_with_event =
  (* Fast path with an armed (never firing) per-flow event: adds the event
     poll and per-check cycles to every packet. *)
  let monitor = Sb_nf.Monitor.create () in
  let guard = Sb_nf.Dos_guard.create ~threshold:1_000_000 () in
  let chain =
    Speedybox.Chain.create ~name:"bench-event"
      [ Sb_nf.Monitor.nf monitor; Sb_nf.Dos_guard.nf guard ]
  in
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ()) chain in
  let warm = sample_packet () in
  let _ = Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm) in
  Test.make ~name:"runtime/fast-path packet with armed event (Monitor+DosGuard)"
    (Staged.stage (fun () ->
         Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm)))

let test_fast_path_supervised =
  (* The PR-2 containment wrapper with an armed injector drawing at rate
     0.0: measures the full supervision overhead (per-NF gate + draw + the
     try/with) against the plain fast-path bench above.  The acceptance
     bound is 5%; the fault-free default (no injector) costs only the
     inactive-supervisor branch. *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench-sup" [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let injector = Sb_fault.Injector.create ~seed:1 () in
  Sb_fault.Injector.set_rate injector ~nf:"mazunat" Sb_fault.Injector.Raise 0.0;
  Sb_fault.Injector.set_rate injector ~nf:"monitor" Sb_fault.Injector.Raise 0.0;
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ~injector ()) chain in
  let warm = sample_packet () in
  let _ = Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm) in
  Test.make ~name:"runtime/fast-path packet supervised (NAT+Monitor, armed injector)"
    (Staged.stage (fun () ->
         Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm)))

let test_fast_path_obs_unarmed =
  (* The observability acceptance bench: identical to the supervised bench
     (armed injector at rate 0.0) with the default disarmed sink — the
     per-packet cost of having observability hooks compiled in but off.
     The acceptance bound vs the supervised baseline is 2% (scripts/
     check_bench.sh enforces 5% against this bench's own baseline). *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench-obs-off"
      [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let injector = Sb_fault.Injector.create ~seed:1 () in
  Sb_fault.Injector.set_rate injector ~nf:"mazunat" Sb_fault.Injector.Raise 0.0;
  Sb_fault.Injector.set_rate injector ~nf:"monitor" Sb_fault.Injector.Raise 0.0;
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ~injector ()) chain in
  let warm = sample_packet () in
  let _ = Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm) in
  Test.make ~name:"runtime/fast-path packet obs-unarmed (NAT+Monitor, armed injector)"
    (Staged.stage (fun () ->
         Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm)))

let test_fast_path_obs_armed =
  (* All three pillars live: per-packet counters + latency histogram, one
     span per stage into the trace ring, and the timeline armed (quiet on
     the fast path).  What `--metrics-out`/`--trace-out` actually costs. *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench-obs-on"
      [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let obs = Sb_obs.Sink.create ~metrics:true ~trace:true ~timeline:true () in
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ~obs ()) chain in
  let warm = sample_packet () in
  let _ = Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm) in
  Test.make ~name:"runtime/fast-path packet obs-armed (NAT+Monitor, metrics+trace+timeline)"
    (Staged.stage (fun () ->
         Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm)))

let test_lru_churn =
  (* 64 flows over a 32-rule cap: every arrival misses (its rule was
     evicted 32 flows ago), re-records, and evicts the current coldest —
     the worst case for the rule table's eviction machinery. *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench-churn"
      [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ~max_rules:32 ()) chain in
  let packets =
    Array.init 64 (fun i ->
        Sb_packet.Packet.tcp
          ~payload:(String.make 64 'x')
          ~src:(ip (Printf.sprintf "10.2.0.%d" (i + 1)))
          ~dst:(ip "192.168.1.10") ~src_port:(41000 + i) ~dst_port:80 ())
  in
  Array.iter (fun p -> ignore (Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy p))) packets;
  let i = ref 0 in
  Test.make ~name:"runtime/lru-churn packet (64 flows, 32-rule cap)"
    (Staged.stage (fun () ->
         let p = packets.(!i) in
         i := (!i + 1) land 63;
         Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy p)))

(* The burst benches measure one [process_burst] of [burst_size] packets
   per run; [run] divides their figures by [burst_size] so the JSON and the
   printed table stay per-packet and directly comparable with the
   per-packet benches above. *)
let burst_size = Speedybox.Runtime.default_burst

let test_burst_fast_path =
  (* The burst counterpart of the fast-path bench: 32 subsequent packets
     of one pre-recorded NAT+Monitor flow per run — classification
     prescan, last-flow rule memo, scratch packets refilled in place. *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench-burst" [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ()) chain in
  let warm = sample_packet () in
  let _ = Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy warm) in
  let batch = Array.init burst_size (fun _ -> Sb_packet.Packet.scratch ()) in
  Test.make ~name:"runtime/burst-32 fast-path (NAT+Monitor, per packet)"
    (Staged.stage (fun () ->
         for i = 0 to burst_size - 1 do
           Sb_packet.Packet.copy_into ~src:warm ~dst:batch.(i)
         done;
         Speedybox.Runtime.process_burst rt batch))

let test_burst_lru_churn =
  (* The lru-churn workload in bursts of 32: every packet still misses the
     rule table (its flow was evicted 32 arrivals ago), so this measures
     burst overheads when the memo never hits and eviction churns. *)
  let nat = Sb_nf.Mazunat.create ~external_ip:(ip "203.0.113.1") () in
  let monitor = Sb_nf.Monitor.create () in
  let chain =
    Speedybox.Chain.create ~name:"bench-burst-churn"
      [ Sb_nf.Mazunat.nf nat; Sb_nf.Monitor.nf monitor ]
  in
  let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ~max_rules:32 ()) chain in
  let packets =
    Array.init 64 (fun i ->
        Sb_packet.Packet.tcp
          ~payload:(String.make 64 'x')
          ~src:(ip (Printf.sprintf "10.3.0.%d" (i + 1)))
          ~dst:(ip "192.168.1.10") ~src_port:(42000 + i) ~dst_port:80 ())
  in
  Array.iter (fun p -> ignore (Speedybox.Runtime.process_packet rt (Sb_packet.Packet.copy p))) packets;
  let batch = Array.init burst_size (fun _ -> Sb_packet.Packet.scratch ()) in
  let base = ref 0 in
  Test.make ~name:"runtime/burst lru-churn (64 flows, 32-rule cap, per packet)"
    (Staged.stage (fun () ->
         for i = 0 to burst_size - 1 do
           Sb_packet.Packet.copy_into ~src:packets.(!base + i) ~dst:batch.(i)
         done;
         base := (!base + burst_size) land 63;
         Speedybox.Runtime.process_burst rt batch))

(* ---- sharded runtime benches ----

   One workload — 64 flows of 32 packets each, flow-contiguous so both the
   unsharded burst path and the sharded stretch coalescer see full 32-packet
   same-flow batches — timed under three executors: the plain runtime, the
   deterministic sharded executor (steering + stretch segmentation overhead)
   and the Domain-parallel executor (ring + merge overhead; real speedup
   only with spare cores).  scripts/check_bench.sh guards the deterministic
   overhead always and the parallel speedup when the recording machine had
   at least 4 cores — which is why [run] records the core count alongside
   the timings.

   Setup is lazy and the shard benches run last in the suite: once a
   process has spawned its first [Domain], the OCaml runtime stays in
   multi-domain mode and every later single-threaded bench measures
   15-50% slow — warming the parallel executor at module init silently
   taxed the guarded fast-path benches. *)

let shard_flows = 64
let shard_pkts_per_flow = 32
let shard_trace_len = shard_flows * shard_pkts_per_flow

let shard_trace () =
  List.concat
    (List.init shard_flows (fun f ->
         List.init shard_pkts_per_flow (fun _ ->
             Sb_packet.Packet.tcp
               ~payload:(String.make 64 'x')
               ~src:(ip (Printf.sprintf "10.4.0.%d" (f + 1)))
               ~dst:(ip "192.168.1.10") ~src_port:(43000 + f) ~dst_port:80 ())))

(* Monitor only: per-flow state and a per-flow digest, so the same chain is
   valid under every executor (no cross-flow NF state to shard-skew). *)
let shard_chain i =
  Speedybox.Chain.create
    ~name:(Printf.sprintf "bench-shard-%d" i)
    [ Sb_nf.Monitor.nf (Sb_nf.Monitor.create ()) ]

let test_shard_unsharded =
  let state =
    lazy
      (let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ()) (shard_chain 0) in
       let trace = shard_trace () in
       ignore (Speedybox.Runtime.run_trace ~burst:burst_size rt trace);
       (rt, trace))
  in
  Test.make ~name:"shard/unsharded run_trace (64 flows x 32, per packet)"
    (Staged.stage (fun () ->
         let rt, trace = Lazy.force state in
         Speedybox.Runtime.run_trace ~burst:burst_size rt trace))

let test_shard_deterministic_1 =
  (* The framework overhead floor: one shard delegates to the unsharded
     burst path, so this differs from the bench above only by the control
     drain and plan bookkeeping. *)
  let state =
    lazy
      (let sh = Sb_shard.Sharded.create ~shards:1 (Speedybox.Runtime.config ()) shard_chain in
       let trace = shard_trace () in
       ignore (Sb_shard.Sharded.run_trace ~burst:burst_size sh trace);
       (sh, trace))
  in
  Test.make ~name:"shard/deterministic-1 (64 flows x 32, per packet)"
    (Staged.stage (fun () ->
         let sh, trace = Lazy.force state in
         Sb_shard.Sharded.run_trace ~burst:burst_size sh trace))

let test_shard_deterministic_4 =
  (* Steering hash + flow directory + stretch segmentation across 4 shards,
     single-threaded: what determinism costs per packet. *)
  let state =
    lazy
      (let sh = Sb_shard.Sharded.create ~shards:4 (Speedybox.Runtime.config ()) shard_chain in
       let trace = shard_trace () in
       ignore (Sb_shard.Sharded.run_trace ~burst:burst_size sh trace);
       (sh, trace))
  in
  Test.make ~name:"shard/deterministic-4 (64 flows x 32, per packet)"
    (Staged.stage (fun () ->
         let sh, trace = Lazy.force state in
         Sb_shard.Sharded.run_trace ~burst:burst_size sh trace))

let test_shard_deterministic_4_state =
  (* The state-store tax: the same monitor chain, but with its cells
     declared on a shared 4-shard store — per-flow entries live in the
     replica's tuple map, global counters (packets/bytes/active/max_len)
     are merged at every same-shard stretch boundary.  check_bench.sh
     holds this within STATE_OVERHEAD of the plain deterministic-4 bench
     above: global-scope state must ride the hot path with plain field
     writes, no locks or atomics. *)
  let state =
    lazy
      (let store = Sb_state.Store.create ~shards:4 () in
       let chain i =
         Speedybox.Chain.create
           ~name:(Printf.sprintf "bench-shard-state-%d" i)
           [
             Sb_nf.Monitor.nf (Sb_nf.Monitor.create ~cells:(Sb_state.Store.replica store i) ());
           ]
       in
       let sh =
         Sb_shard.Sharded.create ~shards:4 (Speedybox.Runtime.config ~state:store ()) chain
       in
       let trace = shard_trace () in
       ignore (Sb_shard.Sharded.run_trace ~burst:burst_size sh trace);
       (sh, trace))
  in
  Test.make ~name:"shard/deterministic-4 state-store (64 flows x 32, per packet)"
    (Staged.stage (fun () ->
         let sh, trace = Lazy.force state in
         Sb_shard.Sharded.run_trace ~burst:burst_size sh trace))

let test_shard_parallel_4 =
  (* 4 worker domains spawned per run, each steering its own trace slice
     and exchanging misdirected batches over the SPSC mesh: on a
     single-core box this measures pure overhead; with >= 4 cores it
     should beat deterministic-4 by the guarded factor.  Measured in its
     own group after everything else — the first Domain.spawn degrades
     every later single-threaded bench in the same process (see header
     comment). *)
  let state =
    lazy
      (let sh = Sb_shard.Sharded.create ~shards:4 (Speedybox.Runtime.config ()) shard_chain in
       let trace = shard_trace () in
       ignore (Sb_shard.Parallel_exec.run_trace ~burst:burst_size sh trace);
       (sh, trace))
  in
  Test.make ~name:"shard/parallel-4 (64 flows x 32, per packet)"
    (Staged.stage (fun () ->
         let sh, trace = Lazy.force state in
         Sb_shard.Parallel_exec.run_trace ~burst:burst_size sh trace))

let test_shard_parallel_4_armed =
  (* The same parallel run with a metrics-armed sink: per-domain child
     registries on the hot path, merge + mesh-telemetry fold at end of
     run.  check_bench.sh holds this within OBS_PARALLEL_OVERHEAD of the
     unarmed parallel bench above.  Metrics pillar only — tracing records
     several spans per packet and measures ring capacity, not the armed
     branch. *)
  let state =
    lazy
      (let obs = Sb_obs.Sink.create ~metrics:true () in
       let sh =
         Sb_shard.Sharded.create ~shards:4 (Speedybox.Runtime.config ~obs ()) shard_chain
       in
       let trace = shard_trace () in
       ignore (Sb_shard.Parallel_exec.run_trace ~burst:burst_size sh trace);
       (sh, trace))
  in
  Test.make ~name:"shard/parallel-4 obs-armed (64 flows x 32, per packet)"
    (Staged.stage (fun () ->
         let sh, trace = Lazy.force state in
         Sb_shard.Parallel_exec.run_trace ~burst:burst_size sh trace))

(* The robustness bench: the burst fast path fed a deterministically
   impaired trace (moderate reorder + duplication + loss over 64 flows x
   32 packets).  Duplicates exercise the DoS-style dedup window and the
   rule memo under repeated bytes; reordering breaks up same-flow
   stretches; loss shrinks them.  check_bench.sh guards this against its
   own baseline, while the unimpaired fast-path benches above guard the
   "clean traffic pays nothing" half of the acceptance bound. *)
let impaired_trace_len, test_impaired_fastpath =
  let clean =
    List.concat
      (List.init 64 (fun f ->
           List.init 32 (fun _ ->
               Sb_packet.Packet.tcp
                 ~payload:(String.make 64 'x')
                 ~src:(ip (Printf.sprintf "10.5.0.%d" (f + 1)))
                 ~dst:(ip "192.168.1.10") ~src_port:(44000 + f) ~dst_port:80 ())))
  in
  let spec =
    match Sb_impair.Impair.parse_spec "reorder:0.1,dup:0.05,loss:0.05" with
    | Ok s -> s
    | Error m -> failwith m
  in
  let impaired, _ = Sb_impair.Impair.apply ~seed:42 spec clean in
  let state =
    lazy
      (let chain =
         Speedybox.Chain.create ~name:"bench-impaired"
           [ Sb_nf.Monitor.nf (Sb_nf.Monitor.create ()) ]
       in
       let rt = Speedybox.Runtime.create (Speedybox.Runtime.config ()) chain in
       ignore (Speedybox.Runtime.run_trace ~burst:burst_size rt impaired);
       (rt, impaired))
  in
  ( List.length impaired,
    Test.make ~name:"runtime/impaired-fastpath burst-32 (reorder+dup+loss, per packet)"
      (Staged.stage (fun () ->
           let rt, impaired = Lazy.force state in
           Speedybox.Runtime.run_trace ~burst:burst_size rt impaired)) )

let test_checksum_full =
  let packet = sample_packet () in
  let l3 = Sb_packet.Packet.l3_offset packet in
  Test.make ~name:"checksum/full ipv4 header recompute"
    (Staged.stage (fun () -> Sb_packet.Ipv4.update_checksum packet.Sb_packet.Packet.buf l3))

let test_checksum_incremental =
  (* The RFC 1624 path a NAT takes for one address rewrite. *)
  let old_word = ip "10.0.0.1" in
  let new_word = ip "203.0.113.77" in
  Test.make ~name:"checksum/rfc1624 incremental (32-bit field)"
    (Staged.stage (fun () ->
         Sb_packet.Checksum.incremental32 ~old_checksum:0x1c46 ~old_word ~new_word))

(* Two groups, measured in order: parallel-4 spawns Domains, and once a
   process has spawned its first Domain the OCaml runtime stays in
   multi-domain mode and every later single-threaded measurement reads
   15-50% slow — so everything single-threaded is warmed AND measured
   before the first spawn. *)
let tests_single_threaded () =
  Test.make_grouped ~name:"speedybox"
    [
      test_consolidate;
      test_apply;
      test_fid;
      test_aho_corasick;
      test_fast_path;
      test_fast_path_with_event;
      test_fast_path_supervised;
      test_fast_path_obs_unarmed;
      test_fast_path_obs_armed;
      test_lru_churn;
      test_burst_fast_path;
      test_burst_lru_churn;
      test_impaired_fastpath;
      test_checksum_full;
      test_checksum_incremental;
      test_shard_unsharded;
      test_shard_deterministic_1;
      test_shard_deterministic_4;
      test_shard_deterministic_4_state;
    ]

let tests_parallel () =
  Test.make_grouped ~name:"speedybox" [ test_shard_parallel_4; test_shard_parallel_4_armed ]

(* Benches whose run processes more than one packet: their measured ns/run
   divides by the batch size before printing/recording. *)
let per_run_packets =
  [
    ("speedybox/runtime/burst-32 fast-path (NAT+Monitor, per packet)", burst_size);
    ("speedybox/runtime/burst lru-churn (64 flows, 32-rule cap, per packet)", burst_size);
    ( "speedybox/runtime/impaired-fastpath burst-32 (reorder+dup+loss, per packet)",
      impaired_trace_len );
    ("speedybox/shard/unsharded run_trace (64 flows x 32, per packet)", shard_trace_len);
    ("speedybox/shard/deterministic-1 (64 flows x 32, per packet)", shard_trace_len);
    ("speedybox/shard/deterministic-4 (64 flows x 32, per packet)", shard_trace_len);
    ("speedybox/shard/deterministic-4 state-store (64 flows x 32, per packet)", shard_trace_len);
    ("speedybox/shard/parallel-4 (64 flows x 32, per packet)", shard_trace_len);
    ("speedybox/shard/parallel-4 obs-armed (64 flows x 32, per packet)", shard_trace_len);
  ]

(* ---- JSON emission (hand-rolled; the build has no JSON library) ----

   Schema: {"schema": "speedybox-microbench/1",
            "baseline": {"<bench name>": <ns/run>, ...},
            "current":  {...}}

   The baseline block is preserved from an existing file so repeated runs
   keep comparing against the first recorded numbers; benches that did not
   exist when the baseline was taken enter it at their first measured
   value. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Line-oriented scan of a previously emitted file: entries inside the
   "baseline" object are `"name": 12.3,` lines.  Returns [] when the file
   is missing or laid out differently (the baseline then restarts). *)
let parse_baseline path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let parse_entry line =
        let line = String.trim line in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = ',' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        match String.rindex_opt line ':' with
        | None -> None
        | Some colon ->
            let key = String.trim (String.sub line 0 colon) in
            let value = String.trim (String.sub line (colon + 1) (String.length line - colon - 1)) in
            if String.length key >= 2 && key.[0] = '"' && key.[String.length key - 1] = '"' then
              match float_of_string_opt value with
              | Some v -> Some (String.sub key 1 (String.length key - 2), v)
              | None -> None
            else None
      in
      let rec in_prelude = function
        | [] -> []
        | l :: rest ->
            if String.trim l = {|"baseline": {|} then in_baseline [] rest else in_prelude rest
      and in_baseline acc = function
        | [] -> List.rev acc
        | l :: rest -> (
            let t = String.trim l in
            if t = "}" || t = "}," then List.rev acc
            else
              match parse_entry l with
              | Some kv -> in_baseline (kv :: acc) rest
              | None -> in_baseline acc rest)
      in
      in_prelude (List.rev !lines)

let emit_json path results =
  let baseline =
    let kept = parse_baseline path in
    kept
    @ List.filter (fun (name, _) -> not (List.mem_assoc name kept)) results
  in
  let oc = open_out path in
  let block kvs =
    String.concat ",\n"
      (List.map (fun (k, v) -> Printf.sprintf "    \"%s\": %.1f" (json_escape k) v) kvs)
  in
  Printf.fprintf oc
    "{\n  \"schema\": \"speedybox-microbench/1\",\n  \"baseline\": {\n%s\n  },\n  \"current\": {\n%s\n  }\n}\n"
    (block baseline) (block results);
  close_out oc;
  Printf.printf "  wrote %s (%d benches)\n" path (List.length results)

(* Measurement discipline: one short discarded pass warms code, caches and
   the benches' lazy state, then the full quota runs [reps] times and each
   bench keeps its minimum — the min over repetitions is the noise-robust
   statistic for a deterministic kernel (any excess over the true cost is
   interference), and it is what stopped trivial kernels like the 30 ns
   checksum from drifting 2x between otherwise identical runs. *)
let reps = 3

let measure ~ols ~instances ~cfg ~warm_cfg tests =
  let estimate o =
    match Analyze.OLS.estimates o with Some (t :: _) -> t | Some [] | None -> nan
  in
  let pass () =
    let raw = Benchmark.all cfg instances tests in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    Hashtbl.fold (fun name o acc -> (name, estimate o) :: acc) results []
  in
  ignore (Benchmark.all warm_cfg instances tests);
  match List.init reps (fun _ -> pass ()) with
  | [] -> []
  | first :: rest ->
      List.map
        (fun (name, v) ->
          let best =
            List.fold_left
              (fun acc p ->
                match List.assoc_opt name p with
                | Some v' when v' < acc -> v'
                | _ -> acc)
              v rest
          in
          (name, best))
        first

let run ?json ?(extra = fun () -> []) () =
  print_endline
    "\n=== Microbench: wall-clock costs of hot operations (Bechamel, min of 3 runs) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let warm_cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.05) () in
  let by_name =
    measure ~ols ~instances ~cfg ~warm_cfg (tests_single_threaded ())
    @ measure ~ols ~instances ~cfg ~warm_cfg (tests_parallel ())
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, ns) ->
           let ns =
             match List.assoc_opt name per_run_packets with
             | Some n -> ns /. float_of_int n
             | None -> ns
           in
           (name, ns))
  in
  (* Not a timing: the parallel-executor speedup guard in check_bench.sh
     only applies when the machine that recorded the figures had spare
     cores, so the core count rides along in the same JSON. *)
  let by_name =
    by_name
    @ [ ("speedybox/shard/available-cores", float_of_int (Domain.recommended_domain_count ())) ]
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-60s %10.1f ns/run\n" name ns) by_name;
  (* Extra sections (the scale sweep) run only now, after every micro
     measurement: the 1M-flow sweep leaves a ~140MB major heap whose GC
     pressure inflates any figure measured after it. *)
  let extra = extra () in
  Option.iter (fun path -> emit_json path (by_name @ extra)) json
