.PHONY: all test bench bench-json fmt clean

all:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Refresh BENCH_fastpath.json (microbench section only; the baseline
# block in an existing file is preserved).
bench-json:
	dune exec bench/main.exe -- --json BENCH_fastpath.json

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping fmt"; \
	fi

clean:
	dune clean
